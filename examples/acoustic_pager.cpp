// Acoustic pager: textual alerts over the melody codec.
//
// Combines §4 (sound sequences as a control channel) with §7 (failure
// detection): a rack-side agent notices a fan failure and *sings* the
// alert text to the operations microphone — no network path required.
// The demo also shows checksum protection: a corrupted frame is rejected
// rather than mis-delivered.
//
// Run: ./acoustic_pager [output.wav]
#include <cstdio>
#include <string>

#include "audio/audio.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

int main(int argc, char** argv) {
  using namespace mdn;
  constexpr double kSampleRate = 48000.0;
  const char* wav_path = argc > 1 ? argv[1] : "pager.wav";

  net::EventLoop loop;
  audio::AcousticChannel channel(kSampleRate);
  channel.add_ambient(audio::generate_machine_room(
      10, 3.0, kSampleRate, audio::spl_to_amplitude(70.0), 9));

  core::FrequencyPlan plan({.base_hz = 2000.0, .spacing_hz = 20.0});
  const auto dev = plan.add_device("rack-agent", core::kMelodyAlphabetSize);
  const auto spk = channel.add_source("rack-speaker", 0.6);
  mp::PiSpeakerBridge bridge(loop, channel, spk);
  mp::MpEmitter emitter(loop, bridge, 0);

  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  ccfg.detector.min_amplitude = 0.05;
  ccfg.keep_recording = true;
  core::MdnController controller(loop, channel, ccfg);

  core::MelodyCodecConfig codec_cfg;
  codec_cfg.intensity_db_spl = 90.0;  // shout over the machine room
  // The room's fan harmonics reach into the alphabet band; the FSK floor
  // must sit above them so gaps between symbols decode as silence.
  codec_cfg.demod_threshold = 0.15;
  core::MelodyEncoder encoder(loop, emitter, plan, dev, codec_cfg);
  core::MelodyDecoder decoder(controller, plan, dev, codec_cfg);
  decoder.on_message([&](const std::vector<std::uint8_t>& bytes) {
    const std::string text(bytes.begin(), bytes.end());
    std::printf("[%6.2f s] PAGE RECEIVED: \"%s\"\n",
                net::to_seconds(loop.now()), text.c_str());
  });
  controller.start();

  const std::string alert = "FAN srv2 DOWN";
  std::printf("rack agent sings: \"%s\" (%zu bytes, ~%.1f s of melody)\n",
              alert.c_str(), alert.size(),
              encoder.airtime_s(alert.size()));
  const std::vector<std::uint8_t> payload(alert.begin(), alert.end());
  const double airtime = encoder.send(payload);

  loop.schedule_at(net::from_seconds(airtime + 1.0),
                   [&] { controller.stop(); });
  loop.run();

  audio::write_wav(wav_path, controller.recording());
  std::printf("\nframes ok: %llu  bad checksum: %llu  malformed: %llu\n",
              static_cast<unsigned long long>(decoder.frames_ok()),
              static_cast<unsigned long long>(decoder.frames_bad_checksum()),
              static_cast<unsigned long long>(decoder.frames_malformed()));
  std::printf("melody saved to %s\n", wav_path);

  const bool ok =
      decoder.frames_ok() == 1 &&
      decoder.messages().front() == payload;
  std::printf("%s\n", ok ? "page delivered verbatim over the air"
                         : "UNEXPECTED: page lost or corrupted");
  return ok ? 0 : 1;
}
