// Two-room relay demo (§8's multi-hop open question, running).
//
// A switch in the server room signs its queue state; the operations desk
// is a separate room out of earshot.  A relay box (microphone in the
// server room, speaker at the desk) re-sings what it hears on its own
// frequency set, so the desk's listener still gets the congestion alert
// — two acoustic hops, no network path.
//
// Run: ./two_room_relay
#include <cstdio>

#include "audio/audio.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

int main() {
  using namespace mdn;
  constexpr double kSampleRate = 48000.0;

  net::Network net;
  audio::AcousticChannel server_room(kSampleRate);
  audio::AcousticChannel ops_desk(kSampleRate);
  // Each room has its own ambience.
  server_room.add_ambient(audio::generate_machine_room(
      10, 3.0, kSampleRate, audio::spl_to_amplitude(75.0), 5));
  ops_desk.add_ambient(audio::generate_office(
      3.0, kSampleRate, audio::spl_to_amplitude(45.0), 6));

  // Bottleneck switch in the server room.
  auto& sw = net.add_switch("s1");
  auto& h1 = net.add_host("h1", net::make_ipv4(10, 0, 0, 1));
  auto& h2 = net.add_host("h2", net::make_ipv4(10, 0, 0, 2));
  net::LinkSpec fast;
  fast.rate_bps = 1e9;
  net::LinkSpec slow;
  slow.rate_bps = 8e6;
  slow.queue_capacity = 200;
  net.connect(h1, sw, fast);
  const std::size_t out = net.connect(h2, sw, slow);
  net::FlowEntry fwd;
  fwd.priority = 1;
  fwd.actions = {net::Action::output(out)};
  sw.flow_table().add(fwd, 0);

  core::FrequencyPlan plan({.base_hz = 2000.0, .spacing_hz = 100.0});
  const auto sw_dev = plan.add_device("s1", 3);
  const auto relay_dev = plan.add_device("relay", 3);

  // Switch speaker in the server room.
  const auto sw_spk = server_room.add_source("s1-speaker", 0.5);
  mp::PiSpeakerBridge sw_bridge(net.loop(), server_room, sw_spk);
  mp::MpEmitter sw_emitter(net.loop(), sw_bridge, 0);
  core::QueueToneConfig qcfg;
  qcfg.port_index = out;
  qcfg.intensity_db_spl = 85.0;
  core::QueueToneReporter reporter(sw, sw_emitter, plan, sw_dev, qcfg);

  // The relay box: mic in the server room, speaker at the desk.
  core::MdnController::Config mic_cfg;
  mic_cfg.detector.sample_rate = kSampleRate;
  mic_cfg.detector.min_amplitude = 0.05;
  core::MdnController relay_mic(net.loop(), server_room, mic_cfg);
  const auto relay_spk = ops_desk.add_source("relay-speaker", 0.5);
  mp::PiSpeakerBridge relay_bridge(net.loop(), ops_desk, relay_spk);
  mp::MpEmitter relay_emitter(net.loop(), relay_bridge, 0);
  core::ToneRelayConfig rcfg;
  rcfg.intensity_db_spl = 75.0;
  core::ToneRelay relay(relay_mic, plan, sw_dev, relay_emitter, relay_dev,
                        rcfg);

  // The desk listener watches the relay's set.
  core::MdnController desk_mic(net.loop(), ops_desk, mic_cfg);
  core::QueueMonitorApp desk_monitor(desk_mic, plan, relay_dev);
  bool alerted = false;
  desk_mic.watch(plan.frequency(relay_dev, 2), [&](const core::ToneEvent& ev) {
    if (!alerted) {
      alerted = true;
      std::printf("[%6.2f s] OPS DESK: congestion alert for s1 "
                  "(heard via relay, two rooms away)\n",
                  ev.time_s);
    }
  });

  reporter.start();
  relay_mic.start();
  desk_mic.start();

  // Overload arrives at t=1 s.
  net::SourceConfig scfg;
  scfg.flow = {h1.ip(), h2.ip(), 40000, 80, net::IpProto::kTcp};
  scfg.start = net::kSecond;
  scfg.stop = net::from_seconds(4.0);
  net::CbrSource source(h1, scfg, 1500.0);
  source.start();

  net.loop().schedule_at(net::from_seconds(5.0), [&] {
    reporter.stop();
    relay_mic.stop();
    desk_mic.stop();
  });
  net.loop().run();

  std::printf("\ntones relayed     : %llu\n",
              static_cast<unsigned long long>(relay.relayed()));
  std::printf("desk heard bands  : %zu events\n",
              desk_monitor.events().size());
  std::printf("congestion alert  : %s\n", alerted ? "delivered" : "MISSED");
  return alerted ? 0 : 1;
}
