// Music-defined load balancing demo (§6, Fig 5a-b).
//
// The rhombus topology: a sender ramps its rate through one path until
// the entry switch's queue sings the "congested" tone; the listening
// controller reacts with a Flow-MOD that splits traffic across both
// paths.  Watch the queue rise, the tone change, and the knee.
//
// Run: ./load_balancer_demo
#include <cstdio>

#include "audio/audio.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"
#include "sdn/sdn.h"

int main() {
  using namespace mdn;
  constexpr double kSampleRate = 48000.0;

  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  core::FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 100.0});

  net::LinkSpec core_link;
  core_link.rate_bps = 8e6;  // 1000 pps per path
  core_link.queue_capacity = 150;
  auto topo = net::build_rhombus(net, core_link);

  net::FlowEntry single;
  single.priority = 10;
  single.actions = {net::Action::output(topo.entry_upper_port)};
  topo.entry->flow_table().add(single, 0);

  sdn::Controller null_controller;
  sdn::ControlChannel sdn_channel(net.loop(), net::kMillisecond);
  const auto dpid = sdn_channel.attach(*topo.entry, null_controller);

  const auto spk = channel.add_source("s1-speaker", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk);
  mp::MpEmitter emitter(net.loop(), bridge, 0);

  core::MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, ccfg);

  const auto dev = plan.add_device("s1", 3);
  core::QueueToneConfig qcfg;
  qcfg.port_index = topo.entry_upper_port;
  core::QueueToneReporter reporter(*topo.entry, emitter, plan, dev, qcfg);

  core::LoadBalancerConfig lbcfg;
  lbcfg.split_ports = {topo.entry_upper_port, topo.entry_lower_port};
  core::LoadBalancerApp balancer(controller, sdn_channel, dpid, plan, dev,
                                 lbcfg);
  balancer.on_balance([&] {
    std::printf("[%6.2f s] >>> congested tone heard: Flow-MOD installed, "
                "traffic now split over both paths <<<\n",
                net::to_seconds(net.loop().now()));
  });

  reporter.start();
  controller.start();

  net::SourceConfig scfg;
  scfg.flow = {topo.src->ip(), topo.dst->ip(), 40000, 80,
               net::IpProto::kTcp};
  scfg.start = 0;
  scfg.stop = net::from_seconds(8.0);
  net::RampSource ramp(*topo.src, scfg, 100.0, 1800.0);
  ramp.start();

  // Narrate the queue every 600 ms.
  net.loop().schedule_periodic(
      600 * net::kMillisecond, 600 * net::kMillisecond, [&] {
        if (reporter.samples().empty()) return true;
        const auto& s = reporter.samples().back();
        static const char* kBand[] = {"500 Hz (calm)", "600 Hz (busy)",
                                      "700 Hz (CONGESTED)"};
        std::printf("[%6.2f s] upper-path queue %3zu pkts -> switch sings "
                    "%s\n",
                    s.time_s, s.backlog, kBand[s.band]);
        return net.loop().now() < net::from_seconds(8.0);
      });

  net.loop().schedule_at(net::from_seconds(8.0), [&] {
    controller.stop();
    reporter.stop();
  });
  net.loop().run();

  std::printf("\nsplit happened at %.2f s\n", balancer.balanced_at_s());
  std::printf("upper path carried %llu pkts, lower path %llu pkts\n",
              static_cast<unsigned long long>(topo.upper->forwarded()),
              static_cast<unsigned long long>(topo.lower->forwarded()));
  std::printf("delivered end-to-end: %llu pkts\n",
              static_cast<unsigned long long>(topo.dst->rx_packets()));
  return balancer.balanced() ? 0 : 1;
}
