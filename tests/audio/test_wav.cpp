#include "audio/wav.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "audio/synth.h"

namespace mdn::audio {
namespace {

class WavTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "mdn_wav_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(WavTest, RoundTripPreservesSignal) {
  ToneSpec spec;
  spec.frequency_hz = 440.0;
  spec.amplitude = 0.5;
  spec.duration_s = 0.25;
  const Waveform original = make_tone(spec, 48000.0);
  write_wav(path("tone.wav"), original);
  const Waveform loaded = read_wav(path("tone.wav"));

  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded.sample_rate(), 48000.0);
  for (std::size_t i = 0; i < loaded.size(); i += 97) {
    // 16-bit quantisation: within one LSB.
    EXPECT_NEAR(loaded[i], original[i], 1.0 / 32767.0 + 1e-9);
  }
}

TEST_F(WavTest, ClampsOutOfRangeSamples) {
  Waveform w(8000.0, std::vector<double>{2.0, -3.0, 0.5});
  write_wav(path("clip.wav"), w);
  const Waveform loaded = read_wav(path("clip.wav"));
  EXPECT_NEAR(loaded[0], 1.0, 1e-4);
  EXPECT_NEAR(loaded[1], -1.0, 1e-4);
  EXPECT_NEAR(loaded[2], 0.5, 1e-4);
}

TEST_F(WavTest, EmptyWaveformRoundTrips) {
  Waveform w(44100.0);
  write_wav(path("empty.wav"), w);
  const Waveform loaded = read_wav(path("empty.wav"));
  EXPECT_TRUE(loaded.empty());
  EXPECT_DOUBLE_EQ(loaded.sample_rate(), 44100.0);
}

TEST_F(WavTest, MissingFileThrows) {
  EXPECT_THROW(read_wav(path("absent.wav")), std::runtime_error);
}

TEST_F(WavTest, GarbageFileThrows) {
  std::ofstream out(path("garbage.wav"), std::ios::binary);
  out << "this is not a wav file at all, not even close";
  out.close();
  EXPECT_THROW(read_wav(path("garbage.wav")), std::runtime_error);
}

TEST_F(WavTest, TruncatedHeaderThrows) {
  std::ofstream out(path("short.wav"), std::ios::binary);
  out << "RIFF";
  out.close();
  EXPECT_THROW(read_wav(path("short.wav")), std::runtime_error);
}

TEST_F(WavTest, UnwritablePathThrows) {
  EXPECT_THROW(write_wav("/nonexistent_dir_xyz/out.wav",
                         Waveform(8000.0, std::size_t{10})),
               std::runtime_error);
}

TEST_F(WavTest, StereoDownmixesToMono) {
  // Hand-build a 2-channel file: L = 0.5, R = -0.5 -> mono 0.0;
  // then L = 0.5, R = 0.5 -> mono 0.5.
  std::vector<std::uint8_t> b;
  const auto put = [&](std::initializer_list<int> bytes) {
    for (int x : bytes) b.push_back(static_cast<std::uint8_t>(x));
  };
  const auto put16 = [&](std::int16_t v) {
    b.push_back(static_cast<std::uint8_t>(v & 0xff));
    b.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  };
  const auto put32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      b.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
  };
  put({'R', 'I', 'F', 'F'});
  put32(36 + 8);
  put({'W', 'A', 'V', 'E'});
  put({'f', 'm', 't', ' '});
  put32(16);
  put16(1);       // PCM
  put16(2);       // stereo
  put32(8000);    // rate
  put32(8000 * 4);
  put16(4);
  put16(16);
  put({'d', 'a', 't', 'a'});
  put32(8);  // two stereo frames
  put16(16383);   // L ~0.5
  put16(-16383);  // R ~-0.5
  put16(16383);
  put16(16383);

  std::ofstream out(path("stereo.wav"), std::ios::binary);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  out.close();

  const Waveform mono = read_wav(path("stereo.wav"));
  ASSERT_EQ(mono.size(), 2u);
  EXPECT_NEAR(mono[0], 0.0, 1e-4);
  EXPECT_NEAR(mono[1], 0.5, 1e-3);
  EXPECT_DOUBLE_EQ(mono.sample_rate(), 8000.0);
}

}  // namespace
}  // namespace mdn::audio
