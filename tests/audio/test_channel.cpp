#include "audio/channel.h"

#include <gtest/gtest.h>

#include <cmath>

#include "audio/synth.h"

namespace mdn::audio {
namespace {

Waveform tone(double freq, double amp, double dur, double sr) {
  ToneSpec spec;
  spec.frequency_hz = freq;
  spec.amplitude = amp;
  spec.duration_s = dur;
  spec.fade_s = 0.0;
  return make_tone(spec, sr);
}

TEST(Spl, ConventionAnchors) {
  EXPECT_NEAR(spl_to_amplitude(94.0), 1.0, 1e-12);
  EXPECT_NEAR(spl_to_amplitude(74.0), 0.1, 1e-12);
  EXPECT_NEAR(amplitude_to_spl(1.0), 94.0, 1e-12);
  EXPECT_NEAR(amplitude_to_spl(0.01), 54.0, 1e-9);
}

TEST(Spl, RoundTrip) {
  for (double db : {30.0, 50.0, 70.0, 85.0, 94.0, 110.0}) {
    EXPECT_NEAR(amplitude_to_spl(spl_to_amplitude(db)), db, 1e-9);
  }
}

TEST(Channel, RequiresPositiveSampleRate) {
  EXPECT_THROW(AcousticChannel(0.0), std::invalid_argument);
}

TEST(Channel, EmissionAppearsAtScheduledTime) {
  AcousticChannel ch(48000.0);
  const auto src = ch.add_source("s", 1.0);
  ch.emit(src, tone(1000.0, 0.5, 0.1, 48000.0), 0.5);

  const Waveform before = ch.render(0.0, 0.4);
  EXPECT_DOUBLE_EQ(before.peak(), 0.0);
  const Waveform during = ch.render(0.5, 0.1);
  EXPECT_NEAR(during.peak(), 0.5, 1e-6);
  const Waveform after = ch.render(0.7, 0.2);
  EXPECT_DOUBLE_EQ(after.peak(), 0.0);
}

TEST(Channel, DistanceAttenuationIsInverse) {
  AcousticChannel ch(48000.0);
  const auto near = ch.add_source("near", 1.0);
  const auto far = ch.add_source("far", 4.0);
  ch.emit(near, tone(500.0, 0.4, 0.1, 48000.0), 0.0);
  ch.emit(far, tone(500.0, 0.4, 0.1, 48000.0), 0.2);

  const double near_peak = ch.render(0.0, 0.1).peak();
  const double far_peak = ch.render(0.2, 0.1).peak();
  EXPECT_NEAR(near_peak / far_peak, 4.0, 0.01);
}

TEST(Channel, MinimumDistanceClamped) {
  AcousticChannel ch(48000.0);
  const auto glued = ch.add_source("glued", 0.0);
  ch.emit(glued, tone(500.0, 0.1, 0.05, 48000.0), 0.0);
  // 0 m clamps to 0.1 m -> gain 10.
  EXPECT_NEAR(ch.render(0.0, 0.05).peak(), 1.0, 0.01);
}

TEST(Channel, SimultaneousEmissionsSuperpose) {
  AcousticChannel ch(48000.0);
  const auto a = ch.add_source("a", 1.0);
  const auto b = ch.add_source("b", 1.0);
  ch.emit(a, tone(600.0, 0.3, 0.2, 48000.0), 0.0);
  ch.emit(b, tone(600.0, 0.3, 0.2, 48000.0), 0.0);  // same phase
  EXPECT_NEAR(ch.render(0.0, 0.2).peak(), 0.6, 1e-6);
}

TEST(Channel, RenderWindowCutsEmission) {
  AcousticChannel ch(48000.0);
  const auto src = ch.add_source("s", 1.0);
  ch.emit(src, tone(100.0, 0.5, 1.0, 48000.0), 0.0);
  const Waveform mid = ch.render(0.4, 0.2);
  EXPECT_EQ(mid.size(), 9600u);
  EXPECT_GT(mid.rms(), 0.2);
}

TEST(Channel, AmbientLoopsForever) {
  AcousticChannel ch(48000.0);
  Waveform bed(48000.0, std::vector<double>(4800, 0.25));  // 100 ms DC bed
  ch.add_ambient(bed, /*loop=*/true, 0.0);
  const Waveform later = ch.render(10.0, 0.05);
  EXPECT_NEAR(later.peak(), 0.25, 1e-12);
}

TEST(Channel, NonLoopingAmbientEnds) {
  AcousticChannel ch(48000.0);
  Waveform bed(48000.0, std::vector<double>(4800, 0.25));
  ch.add_ambient(bed, /*loop=*/false, 0.0);
  EXPECT_DOUBLE_EQ(ch.render(1.0, 0.05).peak(), 0.0);
}

TEST(Channel, ClearEmissionsKeepsAmbient) {
  AcousticChannel ch(48000.0);
  const auto src = ch.add_source("s", 1.0);
  ch.emit(src, tone(500.0, 0.5, 0.1, 48000.0), 0.0);
  Waveform bed(48000.0, std::vector<double>(480, 0.1));
  ch.add_ambient(bed, true, 0.0);
  ch.clear_emissions();
  const Waveform w = ch.render(0.0, 0.05);
  EXPECT_NEAR(w.peak(), 0.1, 1e-12);
}

TEST(Channel, LastEmissionEndTracksSchedule) {
  AcousticChannel ch(48000.0);
  const auto src = ch.add_source("s", 1.0);
  EXPECT_DOUBLE_EQ(ch.last_emission_end_s(), 0.0);
  ch.emit(src, tone(500.0, 0.5, 0.25, 48000.0), 1.0);
  EXPECT_NEAR(ch.last_emission_end_s(), 1.25, 1e-9);
}

TEST(Channel, SampleRateMismatchThrows) {
  AcousticChannel ch(48000.0);
  const auto src = ch.add_source("s", 1.0);
  EXPECT_THROW(ch.emit(src, tone(500.0, 0.5, 0.1, 16000.0), 0.0),
               std::invalid_argument);
  EXPECT_THROW(ch.add_ambient(tone(500.0, 0.5, 0.1, 16000.0)),
               std::invalid_argument);
}

TEST(Channel, SourceNamesStored) {
  AcousticChannel ch(48000.0);
  const auto s1 = ch.add_source("switch-1", 1.0);
  const auto s2 = ch.add_source("switch-2", 2.0);
  EXPECT_EQ(ch.source_name(s1), "switch-1");
  EXPECT_EQ(ch.source_name(s2), "switch-2");
  EXPECT_EQ(ch.source_count(), 2u);
}

TEST(Microphone, AddsNoiseFloor) {
  AcousticChannel ch(48000.0);
  MicrophoneSpec spec;
  spec.noise_floor_rms = 0.01;
  spec.adc_bits = 0;
  Microphone mic(spec, 48000.0);
  const Waveform rec = mic.record(ch, 0.0, 1.0);  // silence + self-noise
  EXPECT_NEAR(rec.rms(), 0.01, 0.002);
}

TEST(Microphone, QuantisationSnapsToLsb) {
  AcousticChannel ch(48000.0);
  MicrophoneSpec spec;
  spec.noise_floor_rms = 0.0;
  spec.adc_bits = 8;
  spec.clip_level = 1.0;
  Microphone mic(spec, 48000.0);
  const auto src = ch.add_source("s", 1.0);
  ch.emit(src, tone(500.0, 0.5, 0.1, 48000.0), 0.0);
  const Waveform rec = mic.record(ch, 0.0, 0.1);
  const double lsb = 1.0 / 128.0;
  for (std::size_t i = 0; i < rec.size(); i += 100) {
    const double ratio = rec[i] / lsb;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-9);
  }
}

TEST(Microphone, ClipsAtFrontEndLimit) {
  AcousticChannel ch(48000.0);
  MicrophoneSpec spec;
  spec.noise_floor_rms = 0.0;
  spec.adc_bits = 0;
  spec.clip_level = 0.2;
  Microphone mic(spec, 48000.0);
  const auto src = ch.add_source("s", 0.1);  // 10x gain from proximity
  ch.emit(src, tone(500.0, 0.5, 0.1, 48000.0), 0.0);
  const Waveform rec = mic.record(ch, 0.0, 0.1);
  EXPECT_NEAR(rec.peak(), 0.2, 1e-12);
}

TEST(Microphone, GainApplied) {
  AcousticChannel ch(48000.0);
  MicrophoneSpec spec;
  spec.gain = 2.0;
  spec.noise_floor_rms = 0.0;
  spec.adc_bits = 0;
  Microphone mic(spec, 48000.0);
  const auto src = ch.add_source("s", 1.0);
  ch.emit(src, tone(500.0, 0.3, 0.1, 48000.0), 0.0);
  EXPECT_NEAR(mic.record(ch, 0.0, 0.1).peak(), 0.6, 1e-9);
}

TEST(Microphone, RateMismatchThrows) {
  AcousticChannel ch(48000.0);
  Microphone mic(MicrophoneSpec{}, 16000.0);
  EXPECT_THROW(mic.record(ch, 0.0, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace mdn::audio
