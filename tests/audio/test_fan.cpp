#include "audio/fan.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/spectrum.h"
#include "dsp/window.h"

namespace mdn::audio {
namespace {

std::vector<double> spectrum_of(const Waveform& w) {
  const auto window = dsp::make_window(dsp::WindowKind::kHann, w.size());
  return dsp::amplitude_spectrum(w.samples(), window);
}

double amplitude_near(const Waveform& w, double freq, double tol_hz) {
  const auto spec = spectrum_of(w);
  double best = 0.0;
  for (std::size_t k = 0; k < spec.size(); ++k) {
    const double f = static_cast<double>(k) * w.sample_rate() /
                     static_cast<double>(w.size());
    if (std::abs(f - freq) <= tol_hz) best = std::max(best, spec[k]);
  }
  return best;
}

TEST(Fan, BladePassFrequencyFormula) {
  FanSpec spec;
  spec.rpm = 4200.0;
  spec.blades = 7;
  EXPECT_DOUBLE_EQ(blade_pass_hz(spec), 490.0);
}

TEST(Fan, SpectrumShowsBladePassLine) {
  FanSpec spec;
  spec.rpm = 4200.0;
  spec.blades = 7;
  spec.rpm_jitter = 0.0;  // laser-thin line for the assertion
  const Waveform w = generate_fan(spec, 2.0, 48000.0);
  const double bpf = amplitude_near(w, 490.0, 5.0);
  const double off = amplitude_near(w, 860.0, 5.0);  // between harmonics
  EXPECT_GT(bpf, 5.0 * off);
}

TEST(Fan, HarmonicsRollOff) {
  FanSpec spec;
  spec.rpm = 3000.0;  // BPF 350 with 7 blades
  spec.blades = 7;
  spec.rpm_jitter = 0.0;
  spec.broadband_rms = 0.0;
  const Waveform w = generate_fan(spec, 2.0, 48000.0);
  const double h1 = amplitude_near(w, 350.0, 5.0);
  const double h3 = amplitude_near(w, 1050.0, 5.0);
  EXPECT_GT(h1, 1.5 * h3);
  EXPECT_GT(h3, 0.0);
}

TEST(Fan, ShaftLinePresent) {
  FanSpec spec;
  spec.rpm = 4800.0;  // shaft 80 Hz
  spec.blades = 7;
  spec.rpm_jitter = 0.0;
  spec.broadband_rms = 0.0;
  const Waveform w = generate_fan(spec, 2.0, 48000.0);
  EXPECT_GT(amplitude_near(w, 80.0, 3.0), 0.01);
}

TEST(Fan, DeterministicPerSeed) {
  FanSpec spec;
  spec.seed = 33;
  const Waveform a = generate_fan(spec, 0.5, 48000.0);
  const Waveform b = generate_fan(spec, 0.5, 48000.0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 487) {
    ASSERT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(Fan, MachineRoomHitsTargetLevel) {
  const Waveform room = generate_machine_room(20, 1.0, 48000.0, 0.3, 5);
  EXPECT_NEAR(room.rms(), 0.3, 1e-6);
  EXPECT_EQ(room.size(), 48000u);
}

TEST(Fan, MachineRoomIsSpectrallyDense) {
  // Many servers at different speeds -> energy spread over the low band,
  // not one dominant line.
  const Waveform room = generate_machine_room(25, 2.0, 48000.0, 0.3, 6);
  const auto spec = spectrum_of(room);
  const auto peaks = dsp::find_peaks(spec, 48000.0, room.size(), 1e-4, 4);
  EXPECT_GT(peaks.size(), 10u);
}

TEST(Fan, OfficeQuieterProfile) {
  const Waveform office = generate_office(1.0, 48000.0, 0.05, 7);
  EXPECT_NEAR(office.rms(), 0.05, 1e-6);
  // Hum line at 120 Hz present.
  EXPECT_GT(amplitude_near(office, 120.0, 3.0),
            amplitude_near(office, 300.0, 3.0));
}

}  // namespace
}  // namespace mdn::audio
