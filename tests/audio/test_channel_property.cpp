// Property tests on the acoustic channel: linearity, time invariance and
// listener-position consistency over randomised scenes.
#include <gtest/gtest.h>

#include "audio/channel.h"
#include "audio/noise.h"
#include "audio/synth.h"

namespace mdn::audio {
namespace {

constexpr double kSampleRate = 48000.0;

Waveform random_sound(Rng& rng) {
  ToneSpec spec;
  spec.frequency_hz = rng.uniform(200.0, 8000.0);
  spec.amplitude = rng.uniform(0.05, 0.8);
  spec.duration_s = rng.uniform(0.02, 0.3);
  spec.phase_rad = rng.uniform(0.0, 6.28);
  return make_tone(spec, kSampleRate);
}

class ChannelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelProperty, RenderIsSuperpositionOfEmissions) {
  Rng rng(GetParam());
  const int n_emissions = 2 + static_cast<int>(rng.below(6));

  // Build one channel with all emissions and n channels with one each.
  AcousticChannel combined(kSampleRate);
  std::vector<std::unique_ptr<AcousticChannel>> singles;
  for (int i = 0; i < n_emissions; ++i) {
    const double dist = rng.uniform(0.2, 3.0);
    const double start = rng.uniform(0.0, 0.5);
    const Waveform sound = random_sound(rng);

    const auto id = combined.add_source("s" + std::to_string(i), dist);
    combined.emit(id, sound, start);

    singles.push_back(std::make_unique<AcousticChannel>(kSampleRate));
    const auto sid = singles.back()->add_source("s", dist);
    singles.back()->emit(sid, sound, start);
  }

  const Waveform whole = combined.render(0.0, 1.0);
  Waveform sum(kSampleRate, whole.size());
  for (const auto& ch : singles) sum.mix_at(ch->render(0.0, 1.0), 0);

  ASSERT_EQ(whole.size(), sum.size());
  for (std::size_t i = 0; i < whole.size(); i += 131) {
    ASSERT_NEAR(whole[i], sum[i], 1e-12) << "sample " << i;
  }
}

TEST_P(ChannelProperty, RenderWindowsTileSeamlessly) {
  // Rendering [0,1) must equal rendering [0,0.5)+[0.5,1) concatenated.
  Rng rng(GetParam() + 1000);
  AcousticChannel ch(kSampleRate);
  for (int i = 0; i < 4; ++i) {
    const auto id = ch.add_source("s", rng.uniform(0.3, 2.0));
    ch.emit(id, random_sound(rng), rng.uniform(0.0, 0.8));
  }
  Rng noise_rng(GetParam());
  ch.add_ambient(make_pink_noise(0.37, 0.05, kSampleRate, noise_rng), true,
                 0.1);

  const Waveform whole = ch.render(0.0, 1.0);
  Waveform tiled = ch.render(0.0, 0.5);
  tiled.append(ch.render(0.5, 0.5));

  ASSERT_EQ(whole.size(), tiled.size());
  for (std::size_t i = 0; i < whole.size(); i += 97) {
    ASSERT_NEAR(whole[i], tiled[i], 1e-12) << "sample " << i;
  }
}

TEST_P(ChannelProperty, OriginRenderEqualsRenderAtOrigin) {
  Rng rng(GetParam() + 2000);
  AcousticChannel ch(kSampleRate);
  for (int i = 0; i < 3; ++i) {
    const auto id = ch.add_source_at(
        "s", {rng.uniform(-3.0, 3.0), rng.uniform(-3.0, 3.0)});
    ch.emit(id, random_sound(rng), rng.uniform(0.0, 0.3));
  }
  const Waveform a = ch.render(0.0, 0.6);
  const Waveform b = ch.render_at({0.0, 0.0}, 0.0, 0.6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 53) {
    ASSERT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST_P(ChannelProperty, EquidistantListenersHearTheSame) {
  Rng rng(GetParam() + 3000);
  AcousticChannel ch(kSampleRate);
  const auto id = ch.add_source_at("s", {0.0, 0.0});
  ch.emit(id, random_sound(rng), 0.05);

  // Two listeners on the same circle around the source.
  const double r = rng.uniform(0.5, 4.0);
  const double theta = rng.uniform(0.0, 6.28);
  const Waveform a =
      ch.render_at({r * std::cos(theta), r * std::sin(theta)}, 0.0, 0.5);
  const Waveform b = ch.render_at({r, 0.0}, 0.0, 0.5);
  for (std::size_t i = 0; i < a.size(); i += 41) {
    ASSERT_NEAR(a[i], b[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace mdn::audio
