#include "audio/noise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.h"

namespace mdn::audio {
namespace {

// Total power of `w` in the band [lo, hi] Hz.
double band_power(const Waveform& w, double lo, double hi) {
  const auto spec = dsp::fft_real(w.samples());
  double p = 0.0;
  for (std::size_t k = 0; k <= w.size() / 2; ++k) {
    const double f = dsp::bin_frequency(k, w.size(), w.sample_rate());
    if (f >= lo && f <= hi) p += std::norm(spec[k]);
  }
  return p;
}

TEST(Noise, WhiteNoiseHitsTargetRms) {
  Rng rng(1);
  const Waveform w = make_white_noise(1.0, 0.3, 48000.0, rng);
  EXPECT_NEAR(w.rms(), 0.3, 0.01);
}

TEST(Noise, WhiteNoiseIsDeterministicPerSeed) {
  Rng a(5), b(5);
  const Waveform wa = make_white_noise(0.1, 0.2, 48000.0, a);
  const Waveform wb = make_white_noise(0.1, 0.2, 48000.0, b);
  ASSERT_EQ(wa.size(), wb.size());
  for (std::size_t i = 0; i < wa.size(); ++i) {
    ASSERT_DOUBLE_EQ(wa[i], wb[i]);
  }
}

TEST(Noise, WhiteNoiseSpectrumIsFlatish) {
  Rng rng(7);
  const Waveform w = make_white_noise(2.0, 0.5, 48000.0, rng);
  const double low = band_power(w, 100.0, 4000.0);
  const double high = band_power(w, 16000.0, 19900.0);
  // Equal bandwidths carry comparable power (within 3x).
  EXPECT_LT(low / high, 3.0);
  EXPECT_GT(low / high, 1.0 / 3.0);
}

TEST(Noise, PinkNoiseFavoursLowFrequencies) {
  Rng rng(9);
  const Waveform w = make_pink_noise(2.0, 0.5, 48000.0, rng);
  // Per-octave power should be roughly constant -> equal-width linear
  // bands show strong low-frequency dominance.
  const double low = band_power(w, 50.0, 1000.0);
  const double high = band_power(w, 10000.0, 10950.0);
  EXPECT_GT(low / high, 10.0);
}

TEST(Noise, PinkNoiseHitsTargetRms) {
  Rng rng(11);
  const Waveform w = make_pink_noise(1.0, 0.25, 48000.0, rng);
  EXPECT_NEAR(w.rms(), 0.25, 1e-6);
}

TEST(Noise, BandNoiseConcentratedInBand) {
  Rng rng(13);
  const Waveform w =
      make_band_noise(2.0, 0.4, 2000.0, 4000.0, 48000.0, rng);
  const double in_band = band_power(w, 2000.0, 4000.0);
  const double below = band_power(w, 50.0, 1000.0);
  const double above = band_power(w, 8000.0, 16000.0);
  EXPECT_GT(in_band / (below + 1e-12), 10.0);
  EXPECT_GT(in_band / (above + 1e-12), 10.0);
}

TEST(Noise, BandNoiseValidatesBand) {
  Rng rng(15);
  EXPECT_THROW(make_band_noise(1.0, 0.1, 4000.0, 2000.0, 48000.0, rng),
               std::invalid_argument);
}

TEST(Noise, ZeroDurationIsEmpty) {
  Rng rng(17);
  EXPECT_TRUE(make_white_noise(0.0, 0.1, 48000.0, rng).empty());
  EXPECT_TRUE(make_pink_noise(0.0, 0.1, 48000.0, rng).empty());
}

TEST(Biquad, LowPassAttenuatesHighFrequencies) {
  const double sr = 48000.0;
  auto lp = Biquad::low_pass(1000.0, 0.707, sr);
  // Feed a 10 kHz sine; steady-state output should be strongly attenuated.
  double in_energy = 0.0, out_energy = 0.0;
  for (int i = 0; i < 4800; ++i) {
    const double x = std::sin(2.0 * 3.14159265358979 * 10000.0 * i / sr);
    const double y = lp.process(x);
    if (i > 480) {  // skip transient
      in_energy += x * x;
      out_energy += y * y;
    }
  }
  EXPECT_LT(out_energy / in_energy, 0.01);
}

TEST(Biquad, HighPassAttenuatesLowFrequencies) {
  const double sr = 48000.0;
  auto hp = Biquad::high_pass(2000.0, 0.707, sr);
  double in_energy = 0.0, out_energy = 0.0;
  for (int i = 0; i < 48000; ++i) {
    const double x = std::sin(2.0 * 3.14159265358979 * 100.0 * i / sr);
    const double y = hp.process(x);
    if (i > 4800) {
      in_energy += x * x;
      out_energy += y * y;
    }
  }
  EXPECT_LT(out_energy / in_energy, 0.01);
}

TEST(Biquad, PassbandIsTransparent) {
  const double sr = 48000.0;
  auto lp = Biquad::low_pass(8000.0, 0.707, sr);
  double in_energy = 0.0, out_energy = 0.0;
  for (int i = 0; i < 48000; ++i) {
    const double x = std::sin(2.0 * 3.14159265358979 * 400.0 * i / sr);
    const double y = lp.process(x);
    if (i > 4800) {
      in_energy += x * x;
      out_energy += y * y;
    }
  }
  EXPECT_NEAR(out_energy / in_energy, 1.0, 0.05);
}

TEST(Biquad, ResetClearsHistory) {
  auto lp = Biquad::low_pass(1000.0, 0.707, 48000.0);
  const double first = lp.process(1.0);
  lp.process(0.5);
  lp.reset();
  EXPECT_DOUBLE_EQ(lp.process(1.0), first);
}

}  // namespace
}  // namespace mdn::audio
