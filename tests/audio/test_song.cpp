#include "audio/song.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.h"

namespace mdn::audio {
namespace {

double band_power(const Waveform& w, double lo, double hi) {
  const auto spec = dsp::fft_real(w.samples());
  double p = 0.0;
  for (std::size_t k = 0; k <= w.size() / 2; ++k) {
    const double f = dsp::bin_frequency(k, w.size(), w.sample_rate());
    if (f >= lo && f <= hi) p += std::norm(spec[k]);
  }
  return p;
}

TEST(Song, HasRequestedDurationAndAmplitude) {
  const Waveform w = generate_song(3.0, 48000.0, {.amplitude = 0.4});
  EXPECT_EQ(w.size(), 144000u);
  EXPECT_NEAR(w.peak(), 0.4, 1e-9);
}

TEST(Song, DeterministicForSameConfig) {
  const Waveform a = generate_song(1.0, 48000.0, {.seed = 99});
  const Waveform b = generate_song(1.0, 48000.0, {.seed = 99});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 997) {
    ASSERT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(Song, SeedVariesTheMelody) {
  const Waveform a = generate_song(2.0, 48000.0, {.seed = 1});
  const Waveform b = generate_song(2.0, 48000.0, {.seed = 2});
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(Song, CoversBassAndTrebleBands) {
  // The interference must collide with the whole MDN signalling band:
  // bass near 80-200 Hz, harmony 200-1500 Hz, percussion above 4 kHz.
  const Waveform w = generate_song(4.0, 48000.0);
  const double bass = band_power(w, 60.0, 250.0);
  const double mid = band_power(w, 250.0, 1500.0);
  const double treble = band_power(w, 4000.0, 12000.0);
  EXPECT_GT(bass, 0.0);
  EXPECT_GT(mid, 0.0);
  EXPECT_GT(treble, 0.0);
  // Mid band (chords + melody) should carry substantial energy.
  EXPECT_GT(mid / treble, 0.1);
}

TEST(Song, StemsCanBeDisabled) {
  SongConfig cfg;
  cfg.percussion = false;
  cfg.melody = false;
  cfg.bass = false;
  const Waveform chords_only = generate_song(2.0, 48000.0, cfg);
  EXPECT_GT(chords_only.rms(), 0.0);
  // Without percussion the treble band nearly vanishes.
  const double treble = band_power(chords_only, 6000.0, 12000.0);
  const double mid = band_power(chords_only, 200.0, 1500.0);
  EXPECT_GT(mid / (treble + 1e-12), 50.0);
}

TEST(Song, NonStationaryOverTime) {
  // Verse/chorus-like variation: consecutive 1 s windows differ.
  const Waveform w = generate_song(4.0, 48000.0);
  const auto first = w.slice(0, 48000);
  const auto later = w.slice(96000, 48000);
  double diff = 0.0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    diff += std::abs(first[i] - later[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(Song, TempoChangesBeatGrid) {
  // Faster tempo packs more percussion hits into the same duration,
  // raising total high-band energy.
  const Waveform slow =
      generate_song(4.0, 48000.0, {.tempo_bpm = 60.0, .seed = 3});
  const Waveform fast =
      generate_song(4.0, 48000.0, {.tempo_bpm = 140.0, .seed = 3});
  EXPECT_GT(band_power(fast, 5000.0, 11000.0),
            band_power(slow, 5000.0, 11000.0));
}

TEST(Song, ZeroDurationIsEmpty) {
  EXPECT_TRUE(generate_song(0.0, 48000.0).empty());
}

}  // namespace
}  // namespace mdn::audio
