#include "audio/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mdn::audio {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, SplitProducesDistinctStream) {
  Rng a(23);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace mdn::audio
