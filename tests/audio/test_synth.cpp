#include "audio/synth.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/spectrum.h"
#include "dsp/window.h"

namespace mdn::audio {
namespace {

double dominant_frequency(const Waveform& w) {
  const auto window =
      dsp::make_window(dsp::WindowKind::kHann, w.size());
  const auto spec = dsp::amplitude_spectrum(w.samples(), window);
  const auto peaks =
      dsp::find_peaks(spec, w.sample_rate(), w.size(), 0.01);
  return peaks.empty() ? 0.0 : peaks.front().frequency_hz;
}

TEST(Synth, ToneHasRequestedFrequency) {
  ToneSpec spec;
  spec.frequency_hz = 700.0;
  spec.duration_s = 0.2;
  const Waveform w = make_tone(spec, 48000.0);
  EXPECT_NEAR(dominant_frequency(w), 700.0, 2.0);
}

TEST(Synth, ToneHasRequestedDuration) {
  ToneSpec spec;
  spec.duration_s = 0.03;  // the paper's shortest tone
  const Waveform w = make_tone(spec, 48000.0);
  EXPECT_EQ(w.size(), 1440u);
}

TEST(Synth, ToneRespectsAmplitude) {
  ToneSpec spec;
  spec.amplitude = 0.25;
  spec.duration_s = 0.1;
  const Waveform w = make_tone(spec, 48000.0);
  EXPECT_NEAR(w.peak(), 0.25, 1e-3);
}

TEST(Synth, ToneFadesToZeroAtEdges) {
  ToneSpec spec;
  spec.duration_s = 0.1;
  spec.fade_s = 0.005;
  const Waveform w = make_tone(spec, 48000.0);
  EXPECT_NEAR(w[0], 0.0, 1e-9);
  EXPECT_NEAR(w[w.size() - 1], 0.0, 1e-6);
}

TEST(Synth, FadeReducesSpectralSplatter) {
  // A hard-keyed tone has far more out-of-band energy than a faded one.
  // 1013 Hz is deliberately not integer-periodic in the 50 ms buffer, so
  // the hard-keyed tone has edge discontinuities.
  ToneSpec hard;
  hard.frequency_hz = 1013.0;
  hard.duration_s = 0.05;
  hard.fade_s = 0.0;
  hard.phase_rad = 0.7;
  ToneSpec soft = hard;
  soft.fade_s = 0.004;

  const double sr = 48000.0;
  const auto measure_oob = [&](const Waveform& w) {
    const auto window =
        dsp::make_window(dsp::WindowKind::kRectangular, w.size());
    const auto spec = dsp::amplitude_spectrum(w.samples(), window);
    double oob = 0.0;
    for (std::size_t k = 0; k < spec.size(); ++k) {
      const double f =
          static_cast<double>(k) * sr / static_cast<double>(w.size());
      if (std::abs(f - 1013.0) > 200.0) oob += spec[k] * spec[k];
    }
    return oob;
  };
  EXPECT_LT(measure_oob(make_tone(soft, sr)),
            measure_oob(make_tone(hard, sr)));
}

TEST(Synth, ChordContainsAllNotes) {
  const std::vector<double> freqs{500.0, 600.0, 700.0};
  const Waveform w = make_chord(freqs, 0.3, 0.3, 48000.0);
  const auto window = dsp::make_window(dsp::WindowKind::kHann, w.size());
  const auto spec = dsp::amplitude_spectrum(w.samples(), window);
  const auto peaks =
      dsp::find_peaks(spec, 48000.0, w.size(), 0.1);
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_NEAR(peaks[0].frequency_hz, 500.0, 2.0);
  EXPECT_NEAR(peaks[1].frequency_hz, 600.0, 2.0);
  EXPECT_NEAR(peaks[2].frequency_hz, 700.0, 2.0);
}

TEST(Synth, ChirpSweepsFrequency) {
  const Waveform w = make_chirp(500.0, 2000.0, 1.0, 1.0, 48000.0);
  // Instantaneous frequency early vs late, measured over short windows.
  const auto early = w.slice(2400, 4800);   // around t=0.1
  const auto late = w.slice(40800, 4800);   // around t=0.9
  const double f_early = dominant_frequency(early);
  const double f_late = dominant_frequency(late);
  EXPECT_GT(f_early, 550.0);
  EXPECT_LT(f_early, 900.0);
  EXPECT_GT(f_late, 1700.0);
  EXPECT_LT(f_late, 2050.0);
}

TEST(Synth, SilenceIsSilent) {
  const Waveform w = make_silence(0.25, 48000.0);
  EXPECT_EQ(w.size(), 12000u);
  EXPECT_DOUBLE_EQ(w.peak(), 0.0);
}

TEST(Synth, ZeroDurationYieldsEmpty) {
  ToneSpec spec;
  spec.duration_s = 0.0;
  EXPECT_TRUE(make_tone(spec, 48000.0).empty());
}

TEST(Synth, InvalidSampleRateThrows) {
  ToneSpec spec;
  EXPECT_THROW(make_tone(spec, 0.0), std::invalid_argument);
  EXPECT_THROW(make_silence(1.0, -1.0), std::invalid_argument);
}

TEST(Synth, AdsrShapesEnvelope) {
  Waveform w(1000.0, std::vector<double>(1000, 1.0));
  apply_adsr(w, 0.1, 0.1, 0.5, 0.2);
  EXPECT_NEAR(w[0], 0.0, 0.02);        // attack start
  EXPECT_NEAR(w[100], 1.0, 0.02);      // attack peak
  EXPECT_NEAR(w[200], 0.5, 0.02);      // decayed to sustain
  EXPECT_NEAR(w[500], 0.5, 1e-9);      // sustain
  EXPECT_NEAR(w[999], 0.0, 0.01);      // released
}

TEST(Synth, AdsrOnEmptyIsNoOp) {
  Waveform w(1000.0);
  apply_adsr(w, 0.1, 0.1, 0.5, 0.1);
  EXPECT_TRUE(w.empty());
}

}  // namespace
}  // namespace mdn::audio
