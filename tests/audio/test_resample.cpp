#include "audio/resample.h"

#include <gtest/gtest.h>

#include "audio/synth.h"
#include "dsp/spectrum.h"
#include "dsp/window.h"

namespace mdn::audio {
namespace {

double dominant_frequency(const Waveform& w) {
  const auto window = dsp::make_window(dsp::WindowKind::kHann, w.size());
  const auto spec = dsp::amplitude_spectrum(w.samples(), window);
  const auto peaks =
      dsp::find_peaks(spec, w.sample_rate(), w.size(), 0.05);
  return peaks.empty() ? 0.0 : peaks.front().frequency_hz;
}

Waveform tone(double freq, double sr, double dur) {
  ToneSpec spec;
  spec.frequency_hz = freq;
  spec.amplitude = 0.5;
  spec.duration_s = dur;
  return make_tone(spec, sr);
}

TEST(Resample, SameRateIsIdentity) {
  const Waveform w = tone(700.0, 48000.0, 0.1);
  const Waveform r = resample_linear(w, 48000.0);
  ASSERT_EQ(r.size(), w.size());
  EXPECT_DOUBLE_EQ(r.sample_rate(), 48000.0);
  for (std::size_t i = 0; i < w.size(); i += 61) {
    EXPECT_DOUBLE_EQ(r[i], w[i]);
  }
}

TEST(Resample, DurationPreservedAcrossRates) {
  const Waveform w = tone(700.0, 16000.0, 0.5);
  const Waveform up = resample_linear(w, 48000.0);
  EXPECT_NEAR(up.duration_s(), 0.5, 1e-3);
  const Waveform down = resample_linear(w, 8000.0);
  EXPECT_NEAR(down.duration_s(), 0.5, 1e-3);
}

TEST(Resample, ToneFrequencyPreservedUpsampling) {
  const Waveform w = tone(700.0, 16000.0, 0.25);
  const Waveform up = resample_linear(w, 48000.0);
  EXPECT_NEAR(dominant_frequency(up), 700.0, 5.0);
}

TEST(Resample, ToneFrequencyPreservedDownsampling) {
  const Waveform w = tone(700.0, 48000.0, 0.25);
  const Waveform down = resample_linear(w, 16000.0);
  EXPECT_NEAR(dominant_frequency(down), 700.0, 5.0);
}

TEST(Resample, FortyFourOneToFortyEight) {
  // The awkward real-world pair.
  const Waveform w = tone(1000.0, 44100.0, 0.25);
  const Waveform r = resample_linear(w, 48000.0);
  EXPECT_NEAR(dominant_frequency(r), 1000.0, 5.0);
  EXPECT_NEAR(r.peak(), 0.5, 0.02);
}

TEST(Resample, EmptyInput) {
  const Waveform empty(16000.0);
  const Waveform r = resample_linear(empty, 48000.0);
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.sample_rate(), 48000.0);
}

TEST(Resample, InvalidTargetThrows) {
  const Waveform w = tone(700.0, 16000.0, 0.1);
  EXPECT_THROW(resample_linear(w, 0.0), std::invalid_argument);
  EXPECT_THROW(resample_linear(w, -1.0), std::invalid_argument);
}

TEST(Resample, DetectorWorksOnResampledCapture) {
  // A 16 kHz capture of a 700 Hz tone, upsampled into the 48 kHz
  // analysis chain, is still detected.
  const Waveform capture = tone(700.0, 16000.0, 0.05);
  const Waveform analysed = resample_linear(capture, 48000.0);
  const auto window =
      dsp::make_window(dsp::WindowKind::kBlackman, analysed.size());
  const auto spec =
      dsp::amplitude_spectrum_padded(analysed.samples(), window, 4096);
  const auto peaks = dsp::find_peaks(spec, 48000.0, 4096, 0.1, 8);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(peaks.front().frequency_hz, 700.0, 10.0);
}

}  // namespace
}  // namespace mdn::audio
