#include "audio/waveform.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mdn::audio {
namespace {

Waveform sine(double freq, double amp, double sr, double dur) {
  const auto n = static_cast<std::size_t>(dur * sr);
  Waveform w(sr, n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = amp * std::sin(2.0 * std::numbers::pi * freq *
                          static_cast<double>(i) / sr);
  }
  return w;
}

TEST(Waveform, DefaultIsEmpty) {
  Waveform w;
  EXPECT_TRUE(w.empty());
  EXPECT_DOUBLE_EQ(w.duration_s(), 0.0);
  EXPECT_DOUBLE_EQ(w.rms(), 0.0);
  EXPECT_DOUBLE_EQ(w.peak(), 0.0);
}

TEST(Waveform, DurationFromSamples) {
  Waveform w(48000.0, std::size_t{24000});
  EXPECT_DOUBLE_EQ(w.duration_s(), 0.5);
}

TEST(Waveform, AppendConcatenates) {
  Waveform a(8000.0, std::vector<double>{1.0, 2.0});
  Waveform b(8000.0, std::vector<double>{3.0});
  a.append(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[2], 3.0);
}

TEST(Waveform, AppendRateMismatchThrows) {
  Waveform a(8000.0, std::vector<double>{1.0});
  Waveform b(16000.0, std::vector<double>{1.0});
  EXPECT_THROW(a.append(b), std::invalid_argument);
}

TEST(Waveform, AppendToEmptyAdoptsRate) {
  Waveform a;
  Waveform b(16000.0, std::vector<double>{1.0, 2.0});
  a.append(b);
  EXPECT_DOUBLE_EQ(a.sample_rate(), 16000.0);
  EXPECT_EQ(a.size(), 2u);
}

TEST(Waveform, AppendSilence) {
  Waveform w(1000.0, std::vector<double>{1.0});
  w.append_silence(0.25);
  ASSERT_EQ(w.size(), 251u);
  EXPECT_DOUBLE_EQ(w[100], 0.0);
}

TEST(Waveform, MixAtGrowsBuffer) {
  Waveform base(1000.0, std::size_t{10});
  Waveform add(1000.0, std::vector<double>{1.0, 1.0, 1.0});
  base.mix_at(add, 8);
  ASSERT_EQ(base.size(), 11u);
  EXPECT_DOUBLE_EQ(base[8], 1.0);
  EXPECT_DOUBLE_EQ(base[10], 1.0);
}

TEST(Waveform, MixAtIsAdditiveWithGain) {
  Waveform base(1000.0, std::vector<double>{1.0, 1.0});
  Waveform add(1000.0, std::vector<double>{2.0, 2.0});
  base.mix_at(add, 0, 0.5);
  EXPECT_DOUBLE_EQ(base[0], 2.0);
  EXPECT_DOUBLE_EQ(base[1], 2.0);
}

TEST(Waveform, MixAtRateMismatchThrows) {
  Waveform base(1000.0, std::size_t{4});
  Waveform add(2000.0, std::size_t{4});
  EXPECT_THROW(base.mix_at(add, 0), std::invalid_argument);
}

TEST(Waveform, ScaleAndNormalize) {
  Waveform w(1000.0, std::vector<double>{0.5, -0.25});
  w.scale(2.0);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  w.normalize(0.1);
  EXPECT_DOUBLE_EQ(w.peak(), 0.1);
}

TEST(Waveform, NormalizeSilenceIsNoOp) {
  Waveform w(1000.0, std::size_t{8});
  w.normalize(1.0);
  EXPECT_DOUBLE_EQ(w.peak(), 0.0);
}

TEST(Waveform, SliceZeroPadsPastEnd) {
  Waveform w(1000.0, std::vector<double>{1.0, 2.0, 3.0});
  const Waveform s = w.slice(2, 4);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s[0], 3.0);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
  EXPECT_DOUBLE_EQ(s[3], 0.0);
}

TEST(Waveform, RmsOfSineIsAmplitudeOverSqrt2) {
  const Waveform w = sine(100.0, 0.8, 48000.0, 1.0);
  EXPECT_NEAR(w.rms(), 0.8 / std::numbers::sqrt2, 1e-3);
}

TEST(Waveform, PeakOfSine) {
  const Waveform w = sine(100.0, 0.8, 48000.0, 1.0);
  EXPECT_NEAR(w.peak(), 0.8, 1e-4);
}

TEST(Waveform, IndexAtClampsToBuffer) {
  Waveform w(1000.0, std::size_t{100});
  EXPECT_EQ(w.index_at(-1.0), 0u);
  EXPECT_EQ(w.index_at(0.05), 50u);
  EXPECT_EQ(w.index_at(10.0), 99u);
}

}  // namespace
}  // namespace mdn::audio
