#include <gtest/gtest.h>

#include "net/network.h"
#include "sdn/controller.h"

namespace mdn::sdn {
namespace {

using net::Action;
using net::FlowEntry;
using net::IpProto;
using net::make_ipv4;
using net::Match;
using net::Packet;

Packet make_pkt(std::uint16_t dport = 80) {
  Packet p;
  p.flow = {make_ipv4(10, 0, 0, 1), make_ipv4(10, 0, 0, 2), 40000, dport,
            IpProto::kTcp};
  p.size_bytes = 300;
  return p;
}

class RecordingController : public Controller {
 public:
  void on_packet_in(DatapathId dpid, const PacketIn& msg) override {
    packet_ins.push_back({dpid, msg});
  }
  void on_switch_attached(DatapathId dpid, net::Switch&) override {
    attached.push_back(dpid);
  }
  std::vector<std::pair<DatapathId, PacketIn>> packet_ins;
  std::vector<DatapathId> attached;
};

struct SdnFixture : ::testing::Test {
  void SetUp() override {
    sw = &net.add_switch("s1");
    h1 = &net.add_host("h1", make_ipv4(10, 0, 0, 1));
    h2 = &net.add_host("h2", make_ipv4(10, 0, 0, 2));
    p1 = net.connect(*h1, *sw);
    p2 = net.connect(*h2, *sw);
  }

  net::Network net;
  net::Switch* sw = nullptr;
  net::Host* h1 = nullptr;
  net::Host* h2 = nullptr;
  std::size_t p1 = 0, p2 = 0;
};

TEST_F(SdnFixture, AttachAssignsSequentialDpids) {
  ControlChannel channel(net.loop());
  RecordingController ctl;
  net::Switch& s2 = net.add_switch("s2");
  EXPECT_EQ(channel.attach(*sw, ctl), 0u);
  EXPECT_EQ(channel.attach(s2, ctl), 1u);
  EXPECT_EQ(ctl.attached, (std::vector<DatapathId>{0, 1}));
  EXPECT_EQ(&channel.switch_for(1), &s2);
  EXPECT_THROW(channel.switch_for(7), std::out_of_range);
}

TEST_F(SdnFixture, TableMissBecomesPacketIn) {
  ControlChannel channel(net.loop(), net::kMillisecond);
  RecordingController ctl;
  const auto dpid = channel.attach(*sw, ctl);

  h1->send(make_pkt(8080));
  net.loop().run();

  ASSERT_EQ(ctl.packet_ins.size(), 1u);
  EXPECT_EQ(ctl.packet_ins[0].first, dpid);
  EXPECT_EQ(ctl.packet_ins[0].second.in_port, p1);
  EXPECT_EQ(ctl.packet_ins[0].second.packet.flow.dst_port, 8080);
  EXPECT_EQ(channel.packet_ins_delivered(), 1u);
}

TEST_F(SdnFixture, PacketInDelayedByChannelLatency) {
  const net::SimTime latency = 5 * net::kMillisecond;
  ControlChannel channel(net.loop(), latency);
  RecordingController ctl;
  channel.attach(*sw, ctl);

  net::SimTime delivery = -1;
  h1->send(make_pkt());
  // Poll: capture the time the PacketIn lands by wrapping run_until.
  while (net.loop().pending() > 0) {
    net.loop().run();
  }
  if (!ctl.packet_ins.empty()) delivery = net.loop().now();
  // Link tx (~2.4 us) + prop (10 us) + latency 5 ms.
  EXPECT_GE(delivery, latency);
}

TEST_F(SdnFixture, FlowModAddTakesEffectAfterLatency) {
  ControlChannel channel(net.loop(), net::kMillisecond);
  RecordingController ctl;
  const auto dpid = channel.attach(*sw, ctl);

  FlowEntry e;
  e.priority = 5;
  e.actions = {Action::output(p2)};
  channel.send_flow_mod(dpid, FlowMod::add(e));
  EXPECT_EQ(sw->flow_table().size(), 0u);  // not yet applied
  net.loop().run();
  EXPECT_EQ(sw->flow_table().size(), 1u);
  EXPECT_EQ(channel.flow_mods_sent(), 1u);

  h1->send(make_pkt());
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), 1u);
}

TEST_F(SdnFixture, FlowModDeleteByCookie) {
  ControlChannel channel(net.loop(), 0);
  RecordingController ctl;
  const auto dpid = channel.attach(*sw, ctl);
  FlowEntry e;
  e.priority = 5;
  e.cookie = 42;
  e.actions = {Action::drop()};
  channel.send_flow_mod(dpid, FlowMod::add(e));
  net.loop().run();
  EXPECT_EQ(sw->flow_table().size(), 1u);
  channel.send_flow_mod(dpid, FlowMod::delete_by_cookie(42));
  net.loop().run();
  EXPECT_EQ(sw->flow_table().size(), 0u);
}

TEST_F(SdnFixture, FlowModDeleteByMatch) {
  ControlChannel channel(net.loop(), 0);
  RecordingController ctl;
  const auto dpid = channel.attach(*sw, ctl);
  FlowEntry e;
  e.priority = 5;
  e.match.dst_port = 80;
  e.actions = {Action::drop()};
  channel.send_flow_mod(dpid, FlowMod::add(e));
  net.loop().run();

  Match m;
  m.dst_port = 80;
  channel.send_flow_mod(dpid, FlowMod::delete_by_match(m));
  net.loop().run();
  EXPECT_EQ(sw->flow_table().size(), 0u);
}

TEST_F(SdnFixture, FlowModClear) {
  ControlChannel channel(net.loop(), 0);
  RecordingController ctl;
  const auto dpid = channel.attach(*sw, ctl);
  for (int i = 0; i < 3; ++i) {
    FlowEntry e;
    e.priority = i;
    e.actions = {Action::drop()};
    channel.send_flow_mod(dpid, FlowMod::add(e));
  }
  net.loop().run();
  EXPECT_EQ(sw->flow_table().size(), 3u);
  FlowMod clear;
  clear.command = FlowMod::Command::kClear;
  channel.send_flow_mod(dpid, clear);
  net.loop().run();
  EXPECT_EQ(sw->flow_table().size(), 0u);
}

TEST_F(SdnFixture, PacketOutInjectsOnPort) {
  ControlChannel channel(net.loop(), 0);
  RecordingController ctl;
  const auto dpid = channel.attach(*sw, ctl);
  channel.send_packet_out(dpid,
                          PacketOut{make_pkt(), Action::output(p2), {}});
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), 1u);
}

TEST_F(SdnFixture, PacketOutFloodSkipsInPort) {
  ControlChannel channel(net.loop(), 0);
  RecordingController ctl;
  const auto dpid = channel.attach(*sw, ctl);
  channel.send_packet_out(dpid,
                          PacketOut{make_pkt(), Action::flood(), p1});
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), 1u);
  EXPECT_EQ(h1->rx_packets(), 0u);
}

TEST_F(SdnFixture, PortStatsSnapshot) {
  ControlChannel channel(net.loop(), 0);
  RecordingController ctl;
  const auto dpid = channel.attach(*sw, ctl);
  FlowEntry e;
  e.priority = 1;
  e.actions = {Action::output(p2)};
  channel.send_flow_mod(dpid, FlowMod::add(e));
  net.loop().run();

  for (int i = 0; i < 4; ++i) h1->send(make_pkt());
  net.loop().run();

  const auto stats = channel.query_port_stats(dpid);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[p1].rx_packets, 4u);
  EXPECT_EQ(stats[p2].tx_packets, 4u);
  EXPECT_EQ(stats[p2].tx_bytes, 1200u);
}

}  // namespace
}  // namespace mdn::sdn
