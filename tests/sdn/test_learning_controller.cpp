#include <gtest/gtest.h>

#include "net/network.h"
#include "sdn/controller.h"

namespace mdn::sdn {
namespace {

using net::IpProto;
using net::make_ipv4;
using net::Packet;

Packet pkt_between(const net::Host& from, const net::Host& to,
                   std::uint16_t dport = 80) {
  Packet p;
  p.flow = {from.ip(), to.ip(), 40000, dport, IpProto::kTcp};
  p.size_bytes = 100;
  return p;
}

struct LearningFixture : ::testing::Test {
  void SetUp() override {
    sw = &net.add_switch("s1");
    h1 = &net.add_host("h1", make_ipv4(10, 0, 0, 1));
    h2 = &net.add_host("h2", make_ipv4(10, 0, 0, 2));
    net.connect(*h1, *sw);
    net.connect(*h2, *sw);
    channel = std::make_unique<ControlChannel>(net.loop(), net::kMillisecond);
    ctl = std::make_unique<LearningController>(*channel);
    channel->attach(*sw, *ctl);
  }

  net::Network net;
  net::Switch* sw = nullptr;
  net::Host* h1 = nullptr;
  net::Host* h2 = nullptr;
  std::unique_ptr<ControlChannel> channel;
  std::unique_ptr<LearningController> ctl;
};

TEST_F(LearningFixture, FirstPacketFloodsAndReaches) {
  h1->send(pkt_between(*h1, *h2));
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), 1u);
  EXPECT_EQ(ctl->floods(), 1u);
  EXPECT_EQ(ctl->installs(), 0u);
}

TEST_F(LearningFixture, ReverseTrafficInstallsFlow) {
  h1->send(pkt_between(*h1, *h2));
  net.loop().run();
  // h2 replies: controller knows where h1 lives -> install + packet-out.
  h2->send(pkt_between(*h2, *h1));
  net.loop().run();
  EXPECT_EQ(h1->rx_packets(), 1u);
  EXPECT_EQ(ctl->installs(), 1u);
  EXPECT_GE(sw->flow_table().size(), 1u);
}

TEST_F(LearningFixture, SubsequentTrafficBypassesController) {
  // Bootstrap both directions.
  h1->send(pkt_between(*h1, *h2));
  net.loop().run();
  h2->send(pkt_between(*h2, *h1));
  net.loop().run();
  h1->send(pkt_between(*h1, *h2));
  net.loop().run();

  const auto installs_before = ctl->installs();
  const auto pktins_before = channel->packet_ins_delivered();
  for (int i = 0; i < 5; ++i) h1->send(pkt_between(*h1, *h2));
  net.loop().run();

  EXPECT_EQ(h2->rx_packets(), 1u + 1u + 5u);
  EXPECT_EQ(channel->packet_ins_delivered(), pktins_before);
  EXPECT_EQ(ctl->installs(), installs_before);
}

TEST_F(LearningFixture, ThreeHostsConvergePairwise) {
  net::Host& h3 = net.add_host("h3", make_ipv4(10, 0, 0, 3));
  net.connect(h3, *sw);

  // Everyone greets everyone.
  h1->send(pkt_between(*h1, *h2));
  net.loop().run();
  h2->send(pkt_between(*h2, h3));
  net.loop().run();
  h3.send(pkt_between(h3, *h1));
  net.loop().run();

  const auto before_h2 = h2->rx_packets();
  h1->send(pkt_between(*h1, *h2));
  h3.send(pkt_between(h3, *h2));
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), before_h2 + 2);
}

}  // namespace
}  // namespace mdn::sdn
