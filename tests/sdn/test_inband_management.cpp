// In-band management session failure semantics and the polling baseline.
#include <gtest/gtest.h>

#include "net/network.h"
#include "net/traffic.h"
#include "sdn/controller.h"

namespace mdn::sdn {
namespace {

using net::Action;
using net::FlowEntry;
using net::make_ipv4;

struct SessionFixture : ::testing::Test {
  void SetUp() override {
    sw = &net.add_switch("s1");
    h1 = &net.add_host("h1", make_ipv4(10, 0, 0, 1));
    h2 = &net.add_host("h2", make_ipv4(10, 0, 0, 2));
    net.connect(*h1, *sw);
    out = net.connect(*h2, *sw);
    channel = std::make_unique<ControlChannel>(net.loop(), 0);
    dpid = channel->attach(*sw, controller);
  }

  Controller controller;
  net::Network net;
  net::Switch* sw = nullptr;
  net::Host* h1 = nullptr;
  net::Host* h2 = nullptr;
  std::size_t out = 0;
  std::unique_ptr<ControlChannel> channel;
  DatapathId dpid = 0;
};

TEST_F(SessionFixture, SessionStartsUp) {
  EXPECT_TRUE(channel->session_up(dpid));
  EXPECT_THROW(channel->session_up(99), std::out_of_range);
}

TEST_F(SessionFixture, DownSessionDropsFlowMods) {
  channel->set_session_up(dpid, false);
  FlowEntry e;
  e.priority = 1;
  e.actions = {Action::output(out)};
  channel->send_flow_mod(dpid, FlowMod::add(e));
  net.loop().run();
  EXPECT_EQ(sw->flow_table().size(), 0u);
  EXPECT_EQ(channel->failed_sends(), 1u);
  EXPECT_EQ(channel->flow_mods_sent(), 0u);
}

TEST_F(SessionFixture, DownSessionDropsPacketIns) {
  class Recorder : public Controller {
   public:
    void on_packet_in(DatapathId, const PacketIn&) override { ++count; }
    int count = 0;
  } recorder;
  net::Switch& s2 = net.add_switch("s2");
  net::Host& h3 = net.add_host("h3", make_ipv4(10, 0, 0, 3));
  net.connect(h3, s2);
  const auto dpid2 = channel->attach(s2, recorder);
  channel->set_session_up(dpid2, false);

  net::Packet p;
  p.flow = {h3.ip(), h2->ip(), 1, 2, net::IpProto::kTcp};
  h3.send(p);  // table miss
  net.loop().run();
  EXPECT_EQ(recorder.count, 0);
}

TEST_F(SessionFixture, StatsQueriesFailWhileDown) {
  channel->set_session_up(dpid, false);
  EXPECT_THROW(channel->query_port_stats(dpid), std::runtime_error);
  EXPECT_FALSE(channel->try_query_port_stats(dpid).has_value());
  channel->set_session_up(dpid, true);
  EXPECT_TRUE(channel->try_query_port_stats(dpid).has_value());
}

struct PollingFixture : ::testing::Test {
  void SetUp() override {
    sw = &net.add_switch("s1");
    h1 = &net.add_host("h1", make_ipv4(10, 0, 0, 1));
    h2 = &net.add_host("h2", make_ipv4(10, 0, 0, 2));
    net::LinkSpec fast;
    fast.rate_bps = 1e9;
    net::LinkSpec slow;
    slow.rate_bps = 8e6;  // 1000 pps bottleneck
    slow.queue_capacity = 300;
    net.connect(*h1, *sw, fast);
    out = net.connect(*h2, *sw, slow);
    FlowEntry e;
    e.priority = 1;
    e.actions = {Action::output(out)};
    sw->flow_table().add(e, 0);
    channel = std::make_unique<ControlChannel>(net.loop(), 0);
    dpid = channel->attach(*sw, controller);
  }

  void drive_congestion() {
    cfg.flow = {h1->ip(), h2->ip(), 40000, 80, net::IpProto::kTcp};
    cfg.start = 0;
    cfg.stop = net::from_seconds(3.0);
    source = std::make_unique<net::CbrSource>(*h1, cfg, 1500.0);
    source->start();
  }

  Controller controller;
  net::Network net;
  net::Switch* sw = nullptr;
  net::Host* h1 = nullptr;
  net::Host* h2 = nullptr;
  std::size_t out = 0;
  std::unique_ptr<ControlChannel> channel;
  DatapathId dpid = 0;
  net::SourceConfig cfg;
  std::unique_ptr<net::CbrSource> source;
};

TEST_F(PollingFixture, DetectsCongestionWhileSessionHealthy) {
  PollingQueueMonitor monitor(*channel, dpid, out, 75);
  monitor.start();
  drive_congestion();
  net.loop().schedule_at(net::from_seconds(4.0), [&] { monitor.stop(); });
  net.loop().run();

  EXPECT_TRUE(monitor.congestion_seen());
  EXPECT_GT(monitor.congestion_seen_at_s(), 0.0);
  EXPECT_EQ(monitor.failed_polls(), 0u);
}

TEST_F(PollingFixture, BlindWhileSessionDown) {
  PollingQueueMonitor monitor(*channel, dpid, out, 75);
  monitor.start();
  channel->set_session_up(dpid, false);
  drive_congestion();
  net.loop().schedule_at(net::from_seconds(4.0), [&] { monitor.stop(); });
  net.loop().run();

  EXPECT_FALSE(monitor.congestion_seen());
  EXPECT_GT(monitor.failed_polls(), 0u);
  EXPECT_EQ(monitor.polls(), monitor.failed_polls());
}

TEST_F(PollingFixture, RecoversAfterSessionRestored) {
  PollingQueueMonitor monitor(*channel, dpid, out, 75);
  monitor.start();
  channel->set_session_up(dpid, false);
  drive_congestion();
  net.loop().schedule_at(net::from_seconds(1.0), [&] {
    channel->set_session_up(dpid, true);
  });
  net.loop().schedule_at(net::from_seconds(4.0), [&] { monitor.stop(); });
  net.loop().run();

  EXPECT_TRUE(monitor.congestion_seen());
  EXPECT_GT(monitor.congestion_seen_at_s(), 1.0);
}

}  // namespace
}  // namespace mdn::sdn
