#include "mdn/music_fsm.h"

#include <gtest/gtest.h>

namespace mdn::core {
namespace {

using net::kSecond;

TEST(MusicFsm, InitialState) {
  MusicFsm fsm(3, 0);
  EXPECT_EQ(fsm.state(), 0u);
  EXPECT_EQ(fsm.state_count(), 3u);
  EXPECT_EQ(fsm.initial_state(), 0u);
}

TEST(MusicFsm, InvalidInitialThrows) {
  EXPECT_THROW(MusicFsm(2, 5), std::invalid_argument);
}

TEST(MusicFsm, LabelledTransitionFollowed) {
  MusicFsm fsm(3, 0);
  fsm.add_transition(0, 7, 1);
  fsm.add_transition(1, 8, 2);
  EXPECT_EQ(fsm.feed(7, 0), 1u);
  EXPECT_EQ(fsm.feed(8, 0), 2u);
  EXPECT_EQ(fsm.transitions_taken(), 2u);
}

TEST(MusicFsm, UnlabelledSymbolResetsToInitialByDefault) {
  MusicFsm fsm(3, 0);
  fsm.add_transition(0, 1, 1);
  fsm.feed(1, 0);
  EXPECT_EQ(fsm.feed(99, 0), 0u);
  EXPECT_EQ(fsm.resets(), 1u);
}

TEST(MusicFsm, DefaultTransitionOverridesReset) {
  MusicFsm fsm(3, 0);
  fsm.add_transition(0, 1, 1);
  fsm.set_default_transition(1, 2);
  fsm.feed(1, 0);
  EXPECT_EQ(fsm.feed(99, 0), 2u);
}

TEST(MusicFsm, OutOfRangeEdgesThrow) {
  MusicFsm fsm(2, 0);
  EXPECT_THROW(fsm.add_transition(5, 0, 0), std::out_of_range);
  EXPECT_THROW(fsm.add_transition(0, 0, 5), std::out_of_range);
  EXPECT_THROW(fsm.set_default_transition(5, 0), std::out_of_range);
}

TEST(MusicFsm, EntryActionFires) {
  MusicFsm fsm(2, 0);
  fsm.add_transition(0, 1, 1);
  int entered = 0;
  fsm.on_enter(1, [&] { ++entered; });
  fsm.feed(1, 0);
  EXPECT_EQ(entered, 1);
}

TEST(MusicFsm, TimeoutResetsBetweenSymbols) {
  MusicFsm fsm(3, 0);
  fsm.add_transition(0, 1, 1);
  fsm.add_transition(1, 2, 2);
  fsm.set_timeout(kSecond);

  fsm.feed(1, 0);
  EXPECT_EQ(fsm.state(), 1u);
  // The second symbol arrives 5 s later: timed out, so the machine first
  // resets and the symbol applies from state 0 (no edge -> stays 0).
  EXPECT_EQ(fsm.feed(2, 5 * kSecond), 0u);
}

TEST(MusicFsm, WithinTimeoutProceeds) {
  MusicFsm fsm(3, 0);
  fsm.add_transition(0, 1, 1);
  fsm.add_transition(1, 2, 2);
  fsm.set_timeout(kSecond);
  fsm.feed(1, 0);
  EXPECT_EQ(fsm.feed(2, kSecond / 2), 2u);
}

TEST(MusicFsm, ZeroTimeoutNeverResets) {
  MusicFsm fsm(3, 0);
  fsm.add_transition(0, 1, 1);
  fsm.add_transition(1, 2, 2);
  fsm.feed(1, 0);
  EXPECT_EQ(fsm.feed(2, 1'000'000 * kSecond), 2u);
}

TEST(MusicFsm, ManualResetReturnsToInitial) {
  MusicFsm fsm(2, 0);
  fsm.add_transition(0, 1, 1);
  fsm.feed(1, 0);
  fsm.reset();
  EXPECT_EQ(fsm.state(), 0u);
}

// --- The §4 knock machine -------------------------------------------

TEST(KnockFsm, CorrectSequenceAccepts) {
  auto fsm = make_knock_fsm({0, 1, 2});
  int opened = 0;
  fsm.on_enter(3, [&] { ++opened; });
  fsm.feed(0, 0);
  fsm.feed(1, 0);
  fsm.feed(2, 0);
  EXPECT_EQ(fsm.state(), 3u);
  EXPECT_EQ(opened, 1);
}

TEST(KnockFsm, WrongOrderResets) {
  auto fsm = make_knock_fsm({0, 1, 2});
  fsm.feed(0, 0);
  fsm.feed(2, 0);  // wrong: expected 1
  EXPECT_EQ(fsm.state(), 0u);
  // Can still complete afterwards.
  fsm.feed(0, 0);
  fsm.feed(1, 0);
  fsm.feed(2, 0);
  EXPECT_EQ(fsm.state(), 3u);
}

TEST(KnockFsm, RepeatedFirstKnockKeepsProgressAtOne) {
  auto fsm = make_knock_fsm({0, 1, 2});
  fsm.feed(0, 0);
  fsm.feed(0, 0);  // knock 0 again: restart at step 1, not 0
  EXPECT_EQ(fsm.state(), 1u);
  fsm.feed(1, 0);
  fsm.feed(2, 0);
  EXPECT_EQ(fsm.state(), 3u);
}

TEST(KnockFsm, AcceptingStateIsSticky) {
  auto fsm = make_knock_fsm({0, 1});
  fsm.feed(0, 0);
  fsm.feed(1, 0);
  EXPECT_EQ(fsm.state(), 2u);
  fsm.feed(0, 0);
  fsm.feed(1, 0);
  fsm.feed(9, 0);
  EXPECT_EQ(fsm.state(), 2u);
}

TEST(KnockFsm, SequenceWithRepeatedSymbols) {
  // Knock 0-0-1: the duplicate first symbol must not break progress.
  auto fsm = make_knock_fsm({0, 0, 1});
  fsm.feed(0, 0);
  EXPECT_EQ(fsm.state(), 1u);
  fsm.feed(0, 0);
  EXPECT_EQ(fsm.state(), 2u);
  fsm.feed(1, 0);
  EXPECT_EQ(fsm.state(), 3u);
}

TEST(KnockFsm, SingleKnockSequence) {
  auto fsm = make_knock_fsm({4});
  EXPECT_EQ(fsm.feed(4, 0), 1u);
}

TEST(KnockFsm, EmptySequenceThrows) {
  EXPECT_THROW(make_knock_fsm({}), std::invalid_argument);
}

TEST(KnockFsm, BruteForceNeverOpensWithoutFullSequence) {
  auto fsm = make_knock_fsm({2, 0, 1});
  bool opened = false;
  fsm.on_enter(3, [&] { opened = true; });
  // Feed every pair of symbols — no pair may open a 3-knock lock.
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      fsm.reset();
      fsm.feed(a, 0);
      fsm.feed(b, 0);
      EXPECT_FALSE(opened) << a << "," << b;
    }
  }
}

}  // namespace
}  // namespace mdn::core
