// Multi-hop tone relaying (§8 open question).
#include "mdn/relay.h"

#include <gtest/gtest.h>

#include "audio/audio.h"
#include "mdn/melody_codec.h"
#include "mp/mp.h"

namespace mdn::core {
namespace {

constexpr double kSampleRate = 48000.0;

// Two rooms modelled as separate acoustic channels; the relay's mic is
// in room A, its speaker in room B.
struct RelayFixture : ::testing::Test {
  RelayFixture()
      : room_a(kSampleRate),
        room_b(kSampleRate),
        plan({.base_hz = 900.0, .spacing_hz = 20.0}) {
    source_dev = plan.add_device("source", 3);
    relay_dev = plan.add_device("relay", 3);

    src_speaker = room_a.add_source("src-speaker", 0.5);

    MdnController::Config cfg;
    cfg.detector.sample_rate = kSampleRate;
    relay_mic = std::make_unique<MdnController>(loop, room_a, cfg);
    final_mic = std::make_unique<MdnController>(loop, room_b, cfg);

    relay_speaker = room_b.add_source("relay-speaker", 0.5);
    relay_bridge =
        std::make_unique<mp::PiSpeakerBridge>(loop, room_b, relay_speaker, 0);
    relay_emitter = std::make_unique<mp::MpEmitter>(loop, *relay_bridge, 0);
  }

  void play_in_room_a(std::size_t symbol, double at_s) {
    audio::ToneSpec spec;
    spec.frequency_hz = plan.frequency(source_dev, symbol);
    spec.duration_s = 0.08;
    spec.amplitude = audio::spl_to_amplitude(80.0);
    spec.fade_s = 0.01;
    room_a.emit(src_speaker, audio::make_tone(spec, kSampleRate), at_s);
  }

  void run_until(double t_s) {
    loop.schedule_at(net::from_seconds(t_s), [this] {
      relay_mic->stop();
      final_mic->stop();
    });
    loop.run();
  }

  net::EventLoop loop;
  audio::AcousticChannel room_a;
  audio::AcousticChannel room_b;
  FrequencyPlan plan;
  DeviceId source_dev = 0, relay_dev = 0;
  audio::SourceId src_speaker = 0, relay_speaker = 0;
  std::unique_ptr<MdnController> relay_mic;
  std::unique_ptr<MdnController> final_mic;
  std::unique_ptr<mp::PiSpeakerBridge> relay_bridge;
  std::unique_ptr<mp::MpEmitter> relay_emitter;
};

TEST_F(RelayFixture, ToneCrossesRooms) {
  ToneRelay relay(*relay_mic, plan, source_dev, *relay_emitter, relay_dev);
  std::vector<std::size_t> heard;
  for (std::size_t s = 0; s < 3; ++s) {
    final_mic->watch(plan.frequency(relay_dev, s),
                     [&heard, s](const ToneEvent&) { heard.push_back(s); });
  }
  relay_mic->start();
  final_mic->start();

  play_in_room_a(1, 0.2);
  play_in_room_a(2, 0.6);
  play_in_room_a(0, 1.0);
  run_until(1.8);

  EXPECT_EQ(relay.relayed(), 3u);
  EXPECT_EQ(heard, (std::vector<std::size_t>{1, 2, 0}));
}

TEST_F(RelayFixture, NoLeakWithoutRelay) {
  // Sanity: the rooms are acoustically separate.
  int heard = 0;
  final_mic->watch(plan.frequency(source_dev, 0),
                   [&heard](const ToneEvent&) { ++heard; });
  relay_mic->start();
  final_mic->start();
  play_in_room_a(0, 0.2);
  run_until(0.8);
  EXPECT_EQ(heard, 0);
}

TEST_F(RelayFixture, SymbolCountValidated) {
  const auto tiny = plan.add_device("tiny", 1);
  EXPECT_THROW(
      ToneRelay(*relay_mic, plan, source_dev, *relay_emitter, tiny),
      std::invalid_argument);
}

TEST_F(RelayFixture, TwoHopChain) {
  // Room A -> (relay1) -> room B -> (relay2) -> room C.
  audio::AcousticChannel room_c(kSampleRate);
  MdnController::Config cfg;
  cfg.detector.sample_rate = kSampleRate;
  MdnController mic_c(loop, room_c, cfg);

  const auto relay2_dev = plan.add_device("relay2", 3);
  const auto spk_c = room_c.add_source("relay2-speaker", 0.5);
  mp::PiSpeakerBridge bridge_c(loop, room_c, spk_c, 0);
  mp::MpEmitter emitter_c(loop, bridge_c, 0);

  ToneRelay hop1(*relay_mic, plan, source_dev, *relay_emitter, relay_dev);
  ToneRelay hop2(*final_mic, plan, relay_dev, emitter_c, relay2_dev);

  std::vector<std::size_t> heard;
  for (std::size_t s = 0; s < 3; ++s) {
    mic_c.watch(plan.frequency(relay2_dev, s),
                [&heard, s](const ToneEvent&) { heard.push_back(s); });
  }
  relay_mic->start();
  final_mic->start();
  mic_c.start();

  play_in_room_a(2, 0.2);
  play_in_room_a(1, 0.7);
  loop.schedule_at(net::from_seconds(1.6), [&] {
    relay_mic->stop();
    final_mic->stop();
    mic_c.stop();
  });
  loop.run();

  EXPECT_EQ(hop1.relayed(), 2u);
  EXPECT_EQ(hop2.relayed(), 2u);
  EXPECT_EQ(heard, (std::vector<std::size_t>{2, 1}));
}

TEST_F(RelayFixture, MelodyFrameSurvivesARelayHop) {
  // End-to-end: a melody frame encoded in room A decodes in room B off
  // the relay's re-emission.  Relay tones must be long enough for the
  // downstream FSK receiver and the relay must preserve inter-symbol
  // gaps, so use the codec's own timing for the relayed tones.
  const auto enc_dev = plan.add_device("encoder", kMelodyAlphabetSize);
  const auto rel_dev = plan.add_device("relay-wide", kMelodyAlphabetSize);

  const auto spk_a2 = room_a.add_source("enc-speaker", 0.5);
  mp::PiSpeakerBridge bridge_a(loop, room_a, spk_a2, 0);
  mp::MpEmitter emitter_a(loop, bridge_a, 0);

  MelodyCodecConfig codec_cfg;
  ToneRelayConfig relay_cfg;
  relay_cfg.tone_duration_s = codec_cfg.tone_duration_s;
  ToneRelay relay(*relay_mic, plan, enc_dev, *relay_emitter, rel_dev,
                  relay_cfg);

  MelodyEncoder encoder(loop, emitter_a, plan, enc_dev, codec_cfg);
  MelodyDecoder decoder(*final_mic, plan, rel_dev, codec_cfg);

  relay_mic->start();
  final_mic->start();

  const std::vector<std::uint8_t> payload{0x42, 0x07};
  const double airtime = encoder.send(payload);
  run_until(airtime + 1.0);

  ASSERT_EQ(decoder.frames_ok(), 1u);
  EXPECT_EQ(decoder.messages().front(), payload);
}

}  // namespace
}  // namespace mdn::core
