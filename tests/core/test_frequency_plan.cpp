#include "mdn/frequency_plan.h"

#include <gtest/gtest.h>

#include <set>

namespace mdn::core {
namespace {

TEST(FrequencyPlan, DefaultsMatchPaperParameters) {
  FrequencyPlan plan;
  EXPECT_DOUBLE_EQ(plan.config().spacing_hz, 20.0);
  EXPECT_DOUBLE_EQ(plan.config().base_hz, 500.0);
}

TEST(FrequencyPlan, AssignsSequentialGrid) {
  FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 20.0});
  const auto dev = plan.add_device("s1", 3);
  EXPECT_DOUBLE_EQ(plan.frequency(dev, 0), 500.0);
  EXPECT_DOUBLE_EQ(plan.frequency(dev, 1), 520.0);
  EXPECT_DOUBLE_EQ(plan.frequency(dev, 2), 540.0);
}

TEST(FrequencyPlan, DevicesGetDisjointSets) {
  FrequencyPlan plan;
  const auto a = plan.add_device("s1", 5);
  const auto b = plan.add_device("s2", 5);
  std::set<double> seen;
  for (std::size_t i = 0; i < 5; ++i) {
    seen.insert(plan.frequency(a, i));
    seen.insert(plan.frequency(b, i));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(FrequencyPlan, MinimumSpacingGuaranteed) {
  FrequencyPlan plan({.base_hz = 600.0, .spacing_hz = 25.0});
  const auto a = plan.add_device("a", 4);
  const auto b = plan.add_device("b", 4);
  std::vector<double> all;
  for (std::size_t i = 0; i < 4; ++i) {
    all.push_back(plan.frequency(a, i));
    all.push_back(plan.frequency(b, i));
  }
  std::sort(all.begin(), all.end());
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i] - all[i - 1], 25.0 - 1e-9);
  }
}

TEST(FrequencyPlan, IdentifyExactFrequency) {
  FrequencyPlan plan;
  const auto a = plan.add_device("s1", 3);
  const auto b = plan.add_device("s2", 2);
  const auto hit = plan.identify(plan.frequency(b, 1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->device, b);
  EXPECT_EQ(hit->symbol, 1u);
  const auto hit_a = plan.identify(plan.frequency(a, 2));
  ASSERT_TRUE(hit_a.has_value());
  EXPECT_EQ(hit_a->device, a);
  EXPECT_EQ(hit_a->symbol, 2u);
}

TEST(FrequencyPlan, IdentifyWithinTolerance) {
  FrequencyPlan plan;
  const auto dev = plan.add_device("s1", 2);
  // 7 Hz off, default tolerance is spacing/2 = 10 Hz.
  const auto hit = plan.identify(plan.frequency(dev, 0) + 7.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->symbol, 0u);
}

TEST(FrequencyPlan, IdentifyRejectsOutOfTolerance) {
  FrequencyPlan plan;
  plan.add_device("s1", 2);
  EXPECT_FALSE(plan.identify(505.0, 3.0).has_value());
  EXPECT_FALSE(plan.identify(100.0).has_value());     // below base
  EXPECT_FALSE(plan.identify(547.0).has_value());     // unallocated slot
}

TEST(FrequencyPlan, IdentifyUnallocatedSlotFails) {
  FrequencyPlan plan;
  plan.add_device("s1", 1);  // only 500 Hz allocated
  EXPECT_FALSE(plan.identify(520.0).has_value());
}

TEST(FrequencyPlan, CapacityRoughlyThousandInAudibleBand) {
  // §5: "we could distinguish up to 1000 distinct frequencies ...
  // only considering the human-hearable frequency range."
  FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 20.0,
                      .max_hz = 20000.0});
  const std::size_t capacity = plan.remaining_capacity();
  EXPECT_GE(capacity, 900u);
  EXPECT_LE(capacity, 1100u);
}

TEST(FrequencyPlan, ExhaustionThrows) {
  FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 100.0,
                      .max_hz = 1000.0});
  EXPECT_EQ(plan.remaining_capacity(), 6u);
  plan.add_device("s1", 6);
  EXPECT_EQ(plan.remaining_capacity(), 0u);
  EXPECT_THROW(plan.add_device("s2", 1), std::length_error);
}

TEST(FrequencyPlan, CapacityDecrementsPerAllocation) {
  FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 20.0,
                      .max_hz = 1000.0});
  const auto before = plan.remaining_capacity();
  plan.add_device("s1", 10);
  EXPECT_EQ(plan.remaining_capacity(), before - 10);
}

TEST(FrequencyPlan, InvalidConfigurationThrows) {
  EXPECT_THROW(FrequencyPlan({.base_hz = 0.0}), std::invalid_argument);
  EXPECT_THROW(FrequencyPlan({.spacing_hz = 0.0}), std::invalid_argument);
  EXPECT_THROW(FrequencyPlan({.base_hz = 5000.0, .max_hz = 1000.0}),
               std::invalid_argument);
}

TEST(FrequencyPlan, ZeroSymbolDeviceRejected) {
  FrequencyPlan plan;
  EXPECT_THROW(plan.add_device("s1", 0), std::invalid_argument);
}

TEST(FrequencyPlan, NamesAndCountsTracked) {
  FrequencyPlan plan;
  const auto a = plan.add_device("edge-switch", 2);
  EXPECT_EQ(plan.device_name(a), "edge-switch");
  EXPECT_EQ(plan.symbol_count(a), 2u);
  EXPECT_EQ(plan.device_count(), 1u);
  EXPECT_EQ(plan.frequencies(a).size(), 2u);
}

TEST(FrequencyPlanText, RoundTripPreservesEverything) {
  FrequencyPlan plan({.base_hz = 600.0, .spacing_hz = 25.0,
                      .max_hz = 5000.0});
  plan.add_device("tor-1", 4);
  plan.add_device("tor-2", 7);
  plan.add_device("spine", 3);

  const FrequencyPlan copy = FrequencyPlan::from_text(plan.to_text());
  EXPECT_EQ(copy.device_count(), 3u);
  EXPECT_EQ(copy.device_name(1), "tor-2");
  EXPECT_DOUBLE_EQ(copy.config().spacing_hz, 25.0);
  for (DeviceId d = 0; d < 3; ++d) {
    ASSERT_EQ(copy.symbol_count(d), plan.symbol_count(d));
    for (std::size_t s = 0; s < plan.symbol_count(d); ++s) {
      EXPECT_DOUBLE_EQ(copy.frequency(d, s), plan.frequency(d, s));
    }
  }
}

TEST(FrequencyPlanText, DocumentFormat) {
  FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 20.0,
                      .max_hz = 18000.0});
  plan.add_device("s1", 3);
  const std::string text = plan.to_text();
  EXPECT_NE(text.find("mdn-frequency-plan v1\n"), std::string::npos);
  EXPECT_NE(text.find("band 500 20 18000"), std::string::npos);
  EXPECT_NE(text.find("device s1 3"), std::string::npos);
}

TEST(FrequencyPlanText, MalformedDocumentsRejected) {
  EXPECT_THROW(FrequencyPlan::from_text(""), std::invalid_argument);
  EXPECT_THROW(FrequencyPlan::from_text("not-a-plan v1\nband 1 2 3\n"),
               std::invalid_argument);
  EXPECT_THROW(FrequencyPlan::from_text("mdn-frequency-plan v1\n"),
               std::invalid_argument);
  EXPECT_THROW(
      FrequencyPlan::from_text("mdn-frequency-plan v1\nband x y z\n"),
      std::invalid_argument);
  EXPECT_THROW(FrequencyPlan::from_text(
                   "mdn-frequency-plan v1\nband 500 20 18000\ngarbage\n"),
               std::invalid_argument);
}

TEST(FrequencyPlanText, EmptyPlanRoundTrips) {
  FrequencyPlan plan;
  const FrequencyPlan copy = FrequencyPlan::from_text(plan.to_text());
  EXPECT_EQ(copy.device_count(), 0u);
  EXPECT_EQ(copy.remaining_capacity(), plan.remaining_capacity());
}

TEST(FrequencyPlan, SevenSwitchTestbed) {
  // The paper's testbed: 7 Zodiac FX switches, each with its own set.
  FrequencyPlan plan;
  std::vector<DeviceId> devices;
  for (int i = 0; i < 7; ++i) {
    devices.push_back(plan.add_device("zodiac-" + std::to_string(i), 10));
  }
  // Every (device, symbol) identifiable and attributed correctly.
  for (const auto dev : devices) {
    for (std::size_t s = 0; s < 10; ++s) {
      const auto hit = plan.identify(plan.frequency(dev, s));
      ASSERT_TRUE(hit.has_value());
      EXPECT_EQ(hit->device, dev);
      EXPECT_EQ(hit->symbol, s);
    }
  }
}

}  // namespace
}  // namespace mdn::core
