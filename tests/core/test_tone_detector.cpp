#include "mdn/tone_detector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>

#include "audio/channel.h"
#include "audio/noise.h"
#include "audio/synth.h"

namespace mdn::core {
namespace {

constexpr double kSampleRate = 48000.0;

audio::Waveform tone(double freq, double amp, double dur,
                     double fade = 0.002) {
  audio::ToneSpec spec;
  spec.frequency_hz = freq;
  spec.amplitude = amp;
  spec.duration_s = dur;
  spec.fade_s = fade;
  return audio::make_tone(spec, kSampleRate);
}

bool has_tone_near(const std::vector<DetectedTone>& tones, double freq,
                   double tol = 10.0) {
  for (const auto& t : tones) {
    if (std::abs(t.frequency_hz - freq) <= tol) return true;
  }
  return false;
}

TEST(ToneDetector, DetectsSingleToneIn50msBlock) {
  ToneDetector det;
  const auto block = tone(700.0, 0.1, 0.05);
  const auto tones = det.detect(block.samples());
  ASSERT_FALSE(tones.empty());
  EXPECT_TRUE(has_tone_near(tones, 700.0, 5.0));
  EXPECT_NEAR(tones.front().amplitude, 0.1, 0.03);
}

TEST(ToneDetector, SilenceYieldsNothing) {
  ToneDetector det;
  const auto silence = audio::make_silence(0.05, kSampleRate);
  EXPECT_TRUE(det.detect(silence.samples()).empty());
}

TEST(ToneDetector, EmptyBlockYieldsNothing) {
  ToneDetector det;
  EXPECT_TRUE(det.detect({}).empty());
}

TEST(ToneDetector, SubThresholdToneIgnored) {
  ToneDetectorConfig cfg;
  cfg.min_amplitude = 0.05;
  ToneDetector det(cfg);
  const auto quiet = tone(700.0, 0.01, 0.05);
  EXPECT_TRUE(det.detect(quiet.samples()).empty());
}

TEST(ToneDetector, PaperMinimumToneDurationDetectable) {
  // §3: "the shortest possible length generated in our testbed was
  // approximately 30ms".  A 30 ms tone inside a 50 ms block must be
  // detectable.
  ToneDetector det;
  audio::Waveform block = tone(900.0, 0.1, 0.03);
  block.append_silence(0.02);
  EXPECT_TRUE(has_tone_near(det.detect(block.samples()), 900.0));
}

TEST(ToneDetector, TwoSimultaneousTonesFromDifferentDevices) {
  // Different devices' sets are >= 20 Hz apart, but concurrent tones in a
  // 50 ms block need more separation (window main lobe); 100 Hz is the
  // realistic concurrent case (different devices, different regions).
  ToneDetector det;
  audio::Waveform mix = tone(700.0, 0.1, 0.05);
  mix.mix_at(tone(1100.0, 0.1, 0.05), 0);
  const auto tones = det.detect(mix.samples());
  EXPECT_TRUE(has_tone_near(tones, 700.0));
  EXPECT_TRUE(has_tone_near(tones, 1100.0));
}

TEST(ToneDetector, TwentyHzSeparationResolvedWithLongWindow) {
  // The §3 separation finding, reproduced with a 16k-sample window.
  ToneDetectorConfig cfg;
  cfg.fft_size = 16384;
  ToneDetector det(cfg);
  audio::Waveform mix = tone(740.0, 0.1, 0.35);
  mix.mix_at(tone(760.0, 0.1, 0.35), 0);
  const auto tones = det.detect(mix.samples());
  EXPECT_TRUE(has_tone_near(tones, 740.0, 6.0));
  EXPECT_TRUE(has_tone_near(tones, 760.0, 6.0));
}

TEST(ToneDetector, RobustToWhiteNoise) {
  ToneDetector det;
  audio::Rng rng(5);
  audio::Waveform block = tone(700.0, 0.1, 0.05);
  block.mix_at(audio::make_white_noise(0.05, 0.02, kSampleRate, rng), 0);
  EXPECT_TRUE(has_tone_near(det.detect(block.samples()), 700.0));
}

TEST(ToneDetector, NoFalsePositivesOnModerateNoise) {
  ToneDetectorConfig cfg;
  cfg.min_amplitude = 5e-3;
  ToneDetector det(cfg);
  audio::Rng rng(6);
  const auto noise =
      audio::make_white_noise(0.05, 1e-3, kSampleRate, rng);
  EXPECT_TRUE(det.detect(noise.samples()).empty());
}

TEST(ToneDetector, SetLevelsMeasuresKnownFrequencies) {
  ToneDetector det;
  audio::Waveform mix = tone(500.0, 0.2, 0.1);
  mix.mix_at(tone(700.0, 0.05, 0.1), 0);
  const std::vector<double> watch{500.0, 600.0, 700.0};
  const auto levels = det.set_levels(mix.samples(), watch);
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_NEAR(levels[0], 0.2, 0.03);
  EXPECT_LT(levels[1], 0.02);
  EXPECT_NEAR(levels[2], 0.05, 0.02);
}

TEST(ToneDetector, PresentMatchesTolerance) {
  ToneDetector det;
  const auto block = tone(705.0, 0.1, 0.05);
  EXPECT_TRUE(det.present(block.samples(), 700.0));   // within 10 Hz
  EXPECT_FALSE(det.present(block.samples(), 740.0));  // outside
}

TEST(ToneDetector, InvalidConfigThrows) {
  ToneDetectorConfig bad;
  bad.sample_rate = 0.0;
  EXPECT_THROW(ToneDetector{bad}, std::invalid_argument);
  ToneDetectorConfig bad2;
  bad2.fft_size = 0;
  EXPECT_THROW(ToneDetector{bad2}, std::invalid_argument);
}

TEST(ToneEvents, OnsetSemanticsOneEventPerBurst) {
  ToneDetector det;
  // 200 ms tone inside 1 s recording, scanned in 50 ms hops: one event.
  audio::Waveform rec = audio::make_silence(0.3, kSampleRate);
  rec.append(tone(800.0, 0.1, 0.2));
  rec.append_silence(0.5);

  const std::vector<double> watch{800.0};
  const auto events = extract_tone_events(rec, det, watch, 0.05);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(events[0].time_s, 0.3, 0.06);
  EXPECT_DOUBLE_EQ(events[0].frequency_hz, 800.0);
}

TEST(ToneEvents, SeparateBurstsYieldSeparateEvents) {
  ToneDetector det;
  audio::Waveform rec = tone(800.0, 0.1, 0.06);
  rec.append_silence(0.2);
  rec.append(tone(800.0, 0.1, 0.06));
  rec.append_silence(0.2);

  const std::vector<double> watch{800.0};
  const auto events = extract_tone_events(rec, det, watch, 0.05);
  EXPECT_EQ(events.size(), 2u);
}

TEST(ToneEvents, MultipleWatchedFrequenciesIndependent) {
  ToneDetector det;
  audio::Waveform rec = tone(600.0, 0.1, 0.06);
  rec.append_silence(0.1);
  rec.append(tone(900.0, 0.1, 0.06));
  rec.append_silence(0.1);

  const std::vector<double> watch{600.0, 900.0};
  const auto events = extract_tone_events(rec, det, watch, 0.05);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].frequency_hz, 600.0);
  EXPECT_DOUBLE_EQ(events[1].frequency_hz, 900.0);
  EXPECT_LT(events[0].time_s, events[1].time_s);
}

TEST(ToneEvents, UnwatchedFrequenciesIgnored) {
  ToneDetector det;
  const audio::Waveform rec = tone(600.0, 0.1, 0.2);
  const std::vector<double> watch{1500.0};
  EXPECT_TRUE(extract_tone_events(rec, det, watch, 0.05).empty());
}

TEST(ToneEvents, InvalidHopThrows) {
  ToneDetector det;
  const audio::Waveform rec = tone(600.0, 0.1, 0.1);
  const std::vector<double> watch{600.0};
  EXPECT_THROW(extract_tone_events(rec, det, watch, 0.0),
               std::invalid_argument);
}

// Sensitivity matrix: every window kind must detect the paper's
// operating point (>= 30 ms tones at signalling levels) and stay silent
// on silence.
class DetectorWindowMatrix
    : public ::testing::TestWithParam<
          std::tuple<dsp::WindowKind, double /*duration_s*/>> {};

TEST_P(DetectorWindowMatrix, DetectsOperatingPointTone) {
  const auto [kind, duration] = GetParam();
  ToneDetectorConfig cfg;
  cfg.window = kind;
  ToneDetector det(cfg);
  audio::Waveform block = tone(1200.0, 0.1, duration);
  if (duration < 0.05) block.append_silence(0.05 - duration);
  EXPECT_TRUE(has_tone_near(det.detect(block.samples()), 1200.0))
      << dsp::window_name(kind) << " " << duration << " s";
  const auto silence = audio::make_silence(0.05, kSampleRate);
  EXPECT_TRUE(det.detect(silence.samples()).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DetectorWindowMatrix,
    ::testing::Combine(::testing::Values(dsp::WindowKind::kRectangular,
                                         dsp::WindowKind::kHann,
                                         dsp::WindowKind::kHamming,
                                         dsp::WindowKind::kBlackman),
                       ::testing::Values(0.03, 0.05, 0.1)));

TEST(ToneDetector, ConcurrentDetectOnSharedDetectorIsConsistent) {
  // Satellite of the plan refactor: detect() is const with no mutable
  // members (scratch is thread-local), so one detector shared by many
  // threads must produce the same result as a single-threaded run.
  // Run under TSAN to check the absence-of-races claim mechanically.
  const ToneDetector det;
  const auto block_a = tone(700.0, 0.1, 0.05);
  const auto block_b = tone(1200.0, 0.1, 0.03);  // short: padded path
  const auto ref_a = det.detect(block_a.samples());
  const auto ref_b = det.detect(block_b.samples());

  constexpr std::size_t kThreads = 8;
  std::vector<int> ok(kThreads, 0);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<DetectedTone> out;
      for (int i = 0; i < 50; ++i) {
        const auto& block = (t + i) % 2 == 0 ? block_a : block_b;
        const auto& ref = (t + i) % 2 == 0 ? ref_a : ref_b;
        det.detect_into(block.samples(), out);
        if (out.size() != ref.size()) return;
        for (std::size_t k = 0; k < out.size(); ++k) {
          if (out[k].frequency_hz != ref[k].frequency_hz ||
              out[k].amplitude != ref[k].amplitude) {
            return;
          }
        }
      }
      ok[t] = 1;
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ok[t], 1) << "thread " << t;
  }
}

// Sweep: detection works across the whole default plan band.
class DetectorBandSweep : public ::testing::TestWithParam<double> {};

TEST_P(DetectorBandSweep, DetectsToneAcrossBand) {
  ToneDetector det;
  const double freq = GetParam();
  const auto block = tone(freq, 0.05, 0.05);
  EXPECT_TRUE(has_tone_near(det.detect(block.samples()), freq))
      << freq << " Hz";
}

INSTANTIATE_TEST_SUITE_P(PlanBand, DetectorBandSweep,
                         ::testing::Values(500.0, 740.0, 1000.0, 2020.0,
                                           5000.0, 8000.0, 12000.0,
                                           17980.0));

// --- BlockSignalStats (health-monitor feed) ---------------------------

TEST(ToneDetectorStats, ToneBlockSeparatesPeakFromNoiseFloor) {
  ToneDetector det;
  std::vector<DetectedTone> out;
  obs::BlockSignalStats stats;
  const auto block = tone(800.0, 0.1, 0.05);
  det.detect_into(block.samples(), out, &stats);
  ASSERT_FALSE(out.empty());
  // Peak amplitude is the strongest detection; RMS of a sine of
  // amplitude A is ~A/sqrt(2) (slightly less with the edge fades).
  double strongest = 0.0;
  for (const auto& t : out) strongest = std::max(strongest, t.amplitude);
  EXPECT_NEAR(stats.peak_amplitude, strongest, 1e-12);
  EXPECT_NEAR(stats.rms, 0.1 / std::sqrt(2.0), 0.01);
  // The tone's own bins are excised: the floor sees only leakage, far
  // below the peak — the separation the SNR estimator depends on.
  EXPECT_GT(stats.noise_floor, 0.0);
  EXPECT_LT(stats.noise_floor, stats.peak_amplitude / 100.0);
}

TEST(ToneDetectorStats, SilenceHasZeroStats) {
  ToneDetector det;
  std::vector<DetectedTone> out;
  obs::BlockSignalStats stats;
  stats.rms = 99.0;  // must be overwritten, not accumulated
  const auto silence = audio::make_silence(0.05, kSampleRate);
  det.detect_into(silence.samples(), out, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_DOUBLE_EQ(stats.rms, 0.0);
  EXPECT_DOUBLE_EQ(stats.peak_amplitude, 0.0);
  EXPECT_DOUBLE_EQ(stats.noise_floor, 0.0);
}

TEST(ToneDetectorStats, NoiseRaisesFloorWithoutPeaks) {
  // A deterministic pseudo-noise block (sum of many incommensurate
  // sub-threshold tones) must raise the measured floor well above a
  // clean tone block's leakage floor.
  ToneDetector det;
  std::vector<DetectedTone> out;
  obs::BlockSignalStats clean_stats;
  det.detect_into(tone(800.0, 0.1, 0.05).samples(), out, &clean_stats);
  const double clean_floor = clean_stats.noise_floor;

  audio::Waveform noisy = tone(800.0, 0.1, 0.05);
  for (int k = 0; k < 120; ++k) {
    // 8e-4 < the 1e-3 detection threshold: raises bins, never a peak.
    noisy.mix_at(tone(523.0 + 130.7 * k, 8e-4, 0.05), 0);
  }
  obs::BlockSignalStats noisy_stats;
  det.detect_into(noisy.samples(), out, &noisy_stats);
  EXPECT_GT(noisy_stats.noise_floor, clean_floor * 3.0);
}

TEST(ToneDetectorStats, NullStatsStillDetects) {
  ToneDetector det;
  std::vector<DetectedTone> out;
  const auto block = tone(700.0, 0.1, 0.05);
  det.detect_into(block.samples(), out, nullptr);
  EXPECT_TRUE(has_tone_near(out, 700.0));
  det.detect_into(block.samples(), out);  // default arg stays source-compatible
  EXPECT_TRUE(has_tone_near(out, 700.0));
}

// --- Batched detection -------------------------------------------------

TEST(ToneDetectorBatch, MatchesSingleBlockDetectBitwise) {
  // Every block in a batch must yield exactly the tones and stats a solo
  // detect_into() yields — including stats the batch path must clear,
  // not accumulate.  Batch sizes sweep through partial and full fusions.
  ToneDetector det;
  std::vector<audio::Waveform> waves;
  waves.push_back(tone(700.0, 0.1, 0.05));
  waves.push_back(tone(820.0, 0.2, 0.05));
  waves.push_back(audio::make_silence(0.05, kSampleRate));
  waves.push_back(tone(1240.0, 0.05, 0.05));
  waves.push_back(tone(940.0, 0.15, 0.05));
  waves.push_back(tone(700.0, 0.02, 0.05));

  for (std::size_t count = 1; count <= waves.size(); ++count) {
    std::vector<std::span<const double>> blocks(count);
    std::vector<std::vector<DetectedTone>> outs(count);
    std::vector<std::vector<DetectedTone>*> out_ptrs(count);
    std::vector<obs::BlockSignalStats> stats(count);
    std::vector<obs::BlockSignalStats*> stats_ptrs(count);
    for (std::size_t b = 0; b < count; ++b) {
      blocks[b] = waves[b].samples();
      out_ptrs[b] = &outs[b];
      stats[b].rms = 99.0;  // must be overwritten
      stats_ptrs[b] = &stats[b];
    }
    det.detect_batch_into(blocks, out_ptrs, stats_ptrs);

    std::vector<DetectedTone> solo;
    obs::BlockSignalStats solo_stats;
    for (std::size_t b = 0; b < count; ++b) {
      det.detect_into(blocks[b], solo, &solo_stats);
      ASSERT_EQ(outs[b].size(), solo.size())
          << "count=" << count << " block " << b;
      for (std::size_t t = 0; t < solo.size(); ++t) {
        EXPECT_EQ(outs[b][t].frequency_hz, solo[t].frequency_hz)
            << "count=" << count << " block " << b << " tone " << t;
        EXPECT_EQ(outs[b][t].amplitude, solo[t].amplitude)
            << "count=" << count << " block " << b << " tone " << t;
      }
      EXPECT_EQ(stats[b].rms, solo_stats.rms) << "block " << b;
      EXPECT_EQ(stats[b].peak_amplitude, solo_stats.peak_amplitude)
          << "block " << b;
      EXPECT_EQ(stats[b].noise_floor, solo_stats.noise_floor)
          << "block " << b;
    }
  }
}

TEST(ToneDetectorBatch, MixedLengthBlocksFallBackPerBlock) {
  // Unequal lengths cannot share one plan execution; the batch path must
  // split the run and still match solo detection bitwise.
  ToneDetector det;
  const auto long_block = tone(820.0, 0.2, 0.05);
  const auto short_block = tone(700.0, 0.1, 0.025);
  const std::span<const double> blocks[] = {
      long_block.samples(), short_block.samples(), long_block.samples()};
  std::vector<DetectedTone> outs[3];
  std::vector<DetectedTone>* out_ptrs[] = {&outs[0], &outs[1], &outs[2]};
  det.detect_batch_into(blocks, out_ptrs);

  std::vector<DetectedTone> solo;
  for (std::size_t b = 0; b < 3; ++b) {
    det.detect_into(blocks[b], solo);
    ASSERT_EQ(outs[b].size(), solo.size()) << "block " << b;
    for (std::size_t t = 0; t < solo.size(); ++t) {
      EXPECT_EQ(outs[b][t].frequency_hz, solo[t].frequency_hz);
      EXPECT_EQ(outs[b][t].amplitude, solo[t].amplitude);
    }
  }
}

TEST(ToneDetectorBatch, ThrowsOnSpanSizeMismatch) {
  ToneDetector det;
  const auto block = tone(700.0, 0.1, 0.05);
  const std::span<const double> blocks[] = {block.samples(),
                                            block.samples()};
  std::vector<DetectedTone> out;
  std::vector<DetectedTone>* out_ptrs[] = {&out};
  EXPECT_THROW(
      det.detect_batch_into(blocks,
                            std::span<std::vector<DetectedTone>* const>(
                                out_ptrs, 1)),
      std::invalid_argument);
}

TEST(ToneDetectorBatch, WarmUpDetectsNothingAndKeepsLaterCallsIdentical) {
  // warm_up() must not perturb subsequent detection results.
  ToneDetector cold;
  ToneDetector warmed;
  warmed.warm_up();
  const auto block = tone(940.0, 0.15, 0.05);
  std::vector<DetectedTone> a, b;
  cold.detect_into(block.samples(), a);
  warmed.detect_into(block.samples(), b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].frequency_hz, b[t].frequency_hz);
    EXPECT_EQ(a[t].amplitude, b[t].amplitude);
  }
}

}  // namespace
}  // namespace mdn::core
