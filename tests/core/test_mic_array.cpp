#include "mdn/mic_array.h"

#include <gtest/gtest.h>

#include "audio/audio.h"
#include "mdn/frequency_plan.h"
#include "mp/mp.h"

namespace mdn::core {
namespace {

constexpr double kSampleRate = 48000.0;

// Two racks far apart; one microphone near each; tones from either rack
// reach at least its local microphone.
class MicArrayTest : public ::testing::Test {
 protected:
  MicArrayTest()
      : channel_(kSampleRate),
        plan_({.base_hz = 800.0, .spacing_hz = 20.0}) {
    // Rack A at x=0, rack B at x=20 m.
    dev_a_ = plan_.add_device("rack-a", 1);
    dev_b_ = plan_.add_device("rack-b", 1);
    src_a_ = channel_.add_source_at("spk-a", {0.5, 0.0});
    src_b_ = channel_.add_source_at("spk-b", {20.5, 0.0});

    // Mic 1 at the origin (near rack A), mic 2 at x=20 (near rack B).
    auto cfg1 = config();
    cfg1.microphone.position = {0.0, 0.0};
    mic1_ = std::make_unique<MdnController>(loop_, channel_, cfg1);
    auto cfg2 = config();
    cfg2.microphone.position = {20.0, 0.0};
    mic2_ = std::make_unique<MdnController>(loop_, channel_, cfg2);
  }

  static MdnController::Config config() {
    MdnController::Config cfg;
    cfg.detector.sample_rate = kSampleRate;
    // Tight floor: a tone 20 m away (gain 1/20) must not register.
    cfg.detector.min_amplitude = 0.02;
    return cfg;
  }

  void play(audio::SourceId src, double freq, double at_s) {
    audio::ToneSpec spec;
    spec.frequency_hz = freq;
    spec.duration_s = 0.08;
    spec.amplitude = audio::spl_to_amplitude(80.0);
    channel_.emit(src, audio::make_tone(spec, kSampleRate), at_s);
  }

  void run_until(double t_s) {
    loop_.schedule_at(net::from_seconds(t_s), [this] {
      mic1_->stop();
      mic2_->stop();
    });
    loop_.run();
  }

  net::EventLoop loop_;
  audio::AcousticChannel channel_;
  FrequencyPlan plan_;
  DeviceId dev_a_ = 0, dev_b_ = 0;
  audio::SourceId src_a_ = 0, src_b_ = 0;
  std::unique_ptr<MdnController> mic1_;
  std::unique_ptr<MdnController> mic2_;
};

TEST(PositionMath, Distance) {
  EXPECT_DOUBLE_EQ(audio::distance_m({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(audio::distance_m({1, 1}, {1, 1}), 0.0);
}

TEST(PositionedChannel, RenderAtHearsNearSourceLouder) {
  audio::AcousticChannel ch(kSampleRate);
  const auto src = ch.add_source_at("s", {0.5, 0.0});
  audio::ToneSpec spec;
  spec.frequency_hz = 700.0;
  spec.amplitude = 0.5;
  spec.duration_s = 0.1;
  spec.fade_s = 0.0;
  ch.emit(src, audio::make_tone(spec, kSampleRate), 0.0);

  const double near = ch.render_at({0.0, 0.0}, 0.0, 0.1).peak();
  const double far = ch.render_at({10.5, 0.0}, 0.0, 0.1).peak();
  EXPECT_NEAR(near / far, 20.0, 0.5);
}

TEST(PositionedChannel, AmbientIsPositionIndependent) {
  audio::AcousticChannel ch(kSampleRate);
  audio::Waveform bed(kSampleRate, std::vector<double>(4800, 0.25));
  ch.add_ambient(bed, true, 0.0);
  EXPECT_NEAR(ch.render_at({0, 0}, 0.0, 0.05).peak(),
              ch.render_at({50, 50}, 0.0, 0.05).peak(), 1e-12);
}

TEST(PositionedChannel, SpeedOfSoundDelaysArrival) {
  audio::AcousticChannel ch(kSampleRate);
  ch.set_speed_of_sound(343.0);
  const auto src = ch.add_source_at("s", {34.3, 0.0});  // 100 ms away
  audio::ToneSpec spec;
  spec.frequency_hz = 700.0;
  spec.amplitude = 1.0;
  spec.duration_s = 0.05;
  ch.emit(src, audio::make_tone(spec, kSampleRate), 0.0);

  EXPECT_LT(ch.render_at({0, 0}, 0.0, 0.09).peak(), 1e-9);
  EXPECT_GT(ch.render_at({0, 0}, 0.1, 0.05).peak(), 0.01);
  // A listener at the source hears it immediately.
  EXPECT_GT(ch.render_at({34.3, 0.0}, 0.0, 0.05).peak(), 1.0);
}

TEST_F(MicArrayTest, EachMicHearsItsLocalRack) {
  MicArray array;
  const std::vector<double> watch{plan_.frequency(dev_a_, 0),
                                  plan_.frequency(dev_b_, 0)};
  array.attach(*mic1_, watch, "mic-1");
  array.attach(*mic2_, watch, "mic-2");
  mic1_->start();
  mic2_->start();

  play(src_a_, plan_.frequency(dev_a_, 0), 0.2);
  play(src_b_, plan_.frequency(dev_b_, 0), 0.6);
  run_until(1.2);

  ASSERT_EQ(array.events().size(), 2u);
  EXPECT_EQ(array.microphone_count(), 2u);
  EXPECT_DOUBLE_EQ(array.events()[0].frequency_hz,
                   plan_.frequency(dev_a_, 0));
  EXPECT_EQ(array.events()[0].first_mic, "mic-1");
  EXPECT_EQ(array.events()[1].first_mic, "mic-2");
  // Each tone was out of range of the other microphone.
  EXPECT_EQ(array.events()[0].heard_by, 1u);
  EXPECT_EQ(array.events()[1].heard_by, 1u);
}

TEST_F(MicArrayTest, SharedToneDeduplicated) {
  // A third source midway is heard by both mics; the array reports one
  // merged event heard_by == 2.
  const auto dev_mid = plan_.add_device("rack-mid", 1);
  const auto src_mid = channel_.add_source_at("spk-mid", {10.0, 1.0});

  MicArray array;
  const std::vector<double> watch{plan_.frequency(dev_mid, 0)};
  array.attach(*mic1_, watch, "mic-1");
  array.attach(*mic2_, watch, "mic-2");
  mic1_->start();
  mic2_->start();

  // Loud enough to carry 10 m (gain 1/10): 94 dB -> amplitude 0.1.
  audio::ToneSpec spec;
  spec.frequency_hz = plan_.frequency(dev_mid, 0);
  spec.duration_s = 0.08;
  spec.amplitude = audio::spl_to_amplitude(94.0);
  channel_.emit(src_mid, audio::make_tone(spec, kSampleRate), 0.3);
  run_until(1.0);

  ASSERT_EQ(array.events().size(), 1u);
  EXPECT_EQ(array.events()[0].heard_by, 2u);
  EXPECT_EQ(array.events_heard_by_at_least(2), 1u);
  EXPECT_EQ(array.events_heard_by_at_least(3), 0u);
}

TEST_F(MicArrayTest, HandlerFiresOncePerMergedEvent) {
  const auto dev_mid = plan_.add_device("rack-mid", 1);
  const auto src_mid = channel_.add_source_at("spk-mid", {10.0, 1.0});
  MicArray array;
  int fired = 0;
  array.on_event([&](const MicArray::MergedEvent&) { ++fired; });
  const std::vector<double> watch{plan_.frequency(dev_mid, 0)};
  array.attach(*mic1_, watch, "mic-1");
  array.attach(*mic2_, watch, "mic-2");
  mic1_->start();
  mic2_->start();

  audio::ToneSpec spec;
  spec.frequency_hz = plan_.frequency(dev_mid, 0);
  spec.duration_s = 0.08;
  spec.amplitude = audio::spl_to_amplitude(94.0);
  channel_.emit(src_mid, audio::make_tone(spec, kSampleRate), 0.3);
  run_until(1.0);
  EXPECT_EQ(fired, 1);
}

TEST_F(MicArrayTest, DistinctTonesOfSameFrequencyStaySeparate) {
  MicArray array(/*dedup_window_s=*/0.12);
  const std::vector<double> watch{plan_.frequency(dev_a_, 0)};
  array.attach(*mic1_, watch, "mic-1");
  mic1_->start();

  play(src_a_, plan_.frequency(dev_a_, 0), 0.2);
  play(src_a_, plan_.frequency(dev_a_, 0), 0.8);  // well past the window
  run_until(1.4);
  EXPECT_EQ(array.events().size(), 2u);
}

}  // namespace
}  // namespace mdn::core
