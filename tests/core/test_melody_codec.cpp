#include "mdn/melody_codec.h"

#include <gtest/gtest.h>

#include "audio/audio.h"
#include "mp/mp.h"

namespace mdn::core {
namespace {

constexpr double kSampleRate = 48000.0;

TEST(MelodyFraming, ChecksumIsXor) {
  const std::vector<std::uint8_t> payload{0x12, 0x34, 0xff};
  EXPECT_EQ(melody_checksum(payload), 0x12 ^ 0x34 ^ 0xff);
  EXPECT_EQ(melody_checksum({}), 0);
}

TEST(MelodyFraming, FrameLayout) {
  const std::vector<std::uint8_t> payload{0xab};
  const auto symbols = melody_frame_symbols(payload);
  // START, a, b, checksum-hi, checksum-lo, END.
  ASSERT_EQ(symbols.size(), 6u);
  EXPECT_EQ(symbols[0], kMelodyStartSymbol);
  EXPECT_EQ(symbols[1], 0xau);
  EXPECT_EQ(symbols[2], 0xbu);
  EXPECT_EQ(symbols[3], 0xau);  // checksum of single byte == byte
  EXPECT_EQ(symbols[4], 0xbu);
  EXPECT_EQ(symbols[5], kMelodyEndSymbol);
}

TEST(MelodyFraming, EmptyPayloadStillFramed) {
  const auto symbols = melody_frame_symbols({});
  ASSERT_EQ(symbols.size(), 4u);  // START c1 c2 END
  EXPECT_EQ(symbols[1], 0u);
  EXPECT_EQ(symbols[2], 0u);
}

// ------------------------------------------------------------------
// Over-the-air round trips.
class MelodyAirTest : public ::testing::Test {
 protected:
  MelodyAirTest()
      : channel_(kSampleRate),
        plan_({.base_hz = 1000.0, .spacing_hz = 20.0}),
        device_(plan_.add_device("s1", kMelodyAlphabetSize)),
        speaker_(channel_.add_source("pi", 0.5)),
        bridge_(loop_, channel_, speaker_, 0),
        emitter_(loop_, bridge_, 0) {
    make_controller(1e-3);
  }

  void make_controller(double min_amplitude) {
    MdnController::Config cfg;
    cfg.detector.sample_rate = kSampleRate;
    cfg.detector.min_amplitude = min_amplitude;
    controller_ = std::make_unique<MdnController>(loop_, channel_, cfg);
  }

  void run_until(double t_s) {
    loop_.schedule_at(net::from_seconds(t_s),
                      [this] { controller_->stop(); });
    loop_.run();
  }

  net::EventLoop loop_;
  audio::AcousticChannel channel_;
  FrequencyPlan plan_;
  DeviceId device_;
  audio::SourceId speaker_;
  mp::PiSpeakerBridge bridge_;
  mp::MpEmitter emitter_;
  std::unique_ptr<MdnController> controller_;
};

TEST_F(MelodyAirTest, RoundTripShortMessage) {
  MelodyEncoder encoder(loop_, emitter_, plan_, device_);
  MelodyDecoder decoder(*controller_, plan_, device_);
  controller_->start();

  const std::vector<std::uint8_t> payload{'H', 'i', '!'};
  const double airtime = encoder.send(payload);
  run_until(airtime + 0.5);

  ASSERT_EQ(decoder.frames_ok(), 1u);
  EXPECT_EQ(decoder.messages().front(), payload);
  EXPECT_EQ(decoder.frames_bad_checksum(), 0u);
  EXPECT_EQ(decoder.frames_malformed(), 0u);
}

TEST_F(MelodyAirTest, RoundTripAllByteValuesSampled) {
  MelodyEncoder encoder(loop_, emitter_, plan_, device_);
  MelodyDecoder decoder(*controller_, plan_, device_);
  controller_->start();

  std::vector<std::uint8_t> payload;
  for (int b = 0; b < 256; b += 37) {
    payload.push_back(static_cast<std::uint8_t>(b));
  }
  payload.push_back(0x00);
  payload.push_back(0xff);
  const double airtime = encoder.send(payload);
  run_until(airtime + 0.5);

  ASSERT_EQ(decoder.frames_ok(), 1u);
  EXPECT_EQ(decoder.messages().front(), payload);
}

TEST_F(MelodyAirTest, BackToBackFrames) {
  MelodyEncoder encoder(loop_, emitter_, plan_, device_);
  MelodyDecoder decoder(*controller_, plan_, device_);
  controller_->start();

  const std::vector<std::uint8_t> first{0x01, 0x02};
  const std::vector<std::uint8_t> second{0xaa};
  const double t1 = encoder.send(first);
  loop_.schedule_at(net::from_seconds(t1 + 0.3), [&] {
    encoder.send(second);
  });
  run_until(t1 + 0.3 + encoder.airtime_s(second.size()) + 0.5);

  ASSERT_EQ(decoder.frames_ok(), 2u);
  EXPECT_EQ(decoder.messages()[0], first);
  EXPECT_EQ(decoder.messages()[1], second);
}

TEST_F(MelodyAirTest, RoundTripSurvivesBackgroundSong) {
  audio::Waveform song =
      audio::generate_song(4.0, kSampleRate, {.amplitude = 1.0});
  song.scale(0.01 / song.rms());
  channel_.add_ambient(std::move(song), true, 0.0);
  // Raise the floor so song partials cannot masquerade as data symbols;
  // frame tones play 85 dB, far above it.
  make_controller(0.05);

  MelodyCodecConfig cfg;
  cfg.intensity_db_spl = 85.0;
  MelodyEncoder encoder(loop_, emitter_, plan_, device_, cfg);
  MelodyDecoder decoder(*controller_, plan_, device_, cfg);
  controller_->start();

  const std::vector<std::uint8_t> payload{'f', 'a', 'n', '7'};
  const double airtime = encoder.send(payload);
  run_until(airtime + 0.5);

  ASSERT_EQ(decoder.frames_ok(), 1u);
  EXPECT_EQ(decoder.messages().front(), payload);
}

TEST_F(MelodyAirTest, PayloadTooLargeThrows) {
  MelodyCodecConfig cfg;
  cfg.max_payload = 4;
  MelodyEncoder encoder(loop_, emitter_, plan_, device_, cfg);
  const std::vector<std::uint8_t> big(5, 0x00);
  EXPECT_THROW(encoder.send(big), std::length_error);
}

TEST_F(MelodyAirTest, DeviceWithTooFewSymbolsRejected) {
  const auto small = plan_.add_device("small", 4);
  EXPECT_THROW(MelodyEncoder(loop_, emitter_, plan_, small),
               std::invalid_argument);
  EXPECT_THROW(MelodyDecoder(*controller_, plan_, small),
               std::invalid_argument);
}

TEST_F(MelodyAirTest, AirtimeMatchesRelatedWorkBallpark) {
  // §2: "it can take up to six seconds to send a 20 bytes packet over a
  // single hop" — our default symbol timing lands in the same regime.
  MelodyEncoder encoder(loop_, emitter_, plan_, device_);
  const double t = encoder.airtime_s(20);
  EXPECT_GT(t, 3.0);
  EXPECT_LT(t, 9.0);
}

TEST_F(MelodyAirTest, StrayTonesOutsideFrameIgnored) {
  MelodyDecoder decoder(*controller_, plan_, device_);
  controller_->start();
  // Data symbols with no START: decoder must stay idle.
  for (int i = 0; i < 4; ++i) {
    loop_.schedule_at(net::from_seconds(0.2 * (i + 1)), [this, i] {
      emitter_.emit(plan_.frequency(device_, static_cast<std::size_t>(i)),
                    0.06, 75.0);
    });
  }
  run_until(1.5);
  EXPECT_EQ(decoder.frames_ok(), 0u);
  EXPECT_EQ(decoder.frames_malformed(), 0u);
}

TEST_F(MelodyAirTest, MidFrameTimeoutAborts) {
  MelodyCodecConfig cfg;
  cfg.symbol_timeout_s = 0.5;
  MelodyDecoder decoder(*controller_, plan_, device_, cfg);
  controller_->start();

  // START, one nibble ... long silence ... new frame.
  const auto emit_sym = [this](std::size_t sym, double at) {
    loop_.schedule_at(net::from_seconds(at), [this, sym] {
      emitter_.emit(plan_.frequency(device_, sym), 0.06, 75.0);
    });
  };
  emit_sym(kMelodyStartSymbol, 0.2);
  emit_sym(3, 0.4);
  // 2 s gap > timeout; then a complete empty frame.
  emit_sym(kMelodyStartSymbol, 2.4);
  emit_sym(0, 2.6);
  emit_sym(0, 2.8);
  emit_sym(kMelodyEndSymbol, 3.0);
  run_until(3.6);

  EXPECT_EQ(decoder.frames_ok(), 1u);
  EXPECT_TRUE(decoder.messages().front().empty());
  EXPECT_EQ(decoder.frames_malformed(), 1u);  // the aborted one
}

}  // namespace
}  // namespace mdn::core
