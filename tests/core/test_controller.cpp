#include "mdn/controller.h"

#include <gtest/gtest.h>

#include "audio/synth.h"

namespace mdn::core {
namespace {

constexpr double kSampleRate = 48000.0;

audio::Waveform tone(double freq, double amp, double dur) {
  audio::ToneSpec spec;
  spec.frequency_hz = freq;
  spec.amplitude = amp;
  spec.duration_s = dur;
  return audio::make_tone(spec, kSampleRate);
}

struct ControllerFixture : ::testing::Test {
  ControllerFixture() : channel(kSampleRate) {
    source = channel.add_source("speaker", 1.0);
  }

  MdnController::Config config() const {
    MdnController::Config cfg;
    cfg.detector.sample_rate = kSampleRate;
    return cfg;
  }

  net::EventLoop loop;
  audio::AcousticChannel channel;
  audio::SourceId source;
};

TEST_F(ControllerFixture, HearsScheduledTone) {
  MdnController ctl(loop, channel, config());
  std::vector<ToneEvent> events;
  ctl.watch(700.0, [&](const ToneEvent& ev) { events.push_back(ev); });
  ctl.start();

  channel.emit(source, tone(700.0, 0.1, 0.08), 0.2);
  loop.schedule_at(net::from_seconds(1.0), [&] { ctl.stop(); });
  loop.run();

  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(events[0].time_s, 0.2, 0.06);
  EXPECT_DOUBLE_EQ(events[0].frequency_hz, 700.0);
  EXPECT_GT(events[0].amplitude, 0.05);
}

TEST_F(ControllerFixture, LongToneYieldsSingleOnset) {
  MdnController ctl(loop, channel, config());
  int onsets = 0;
  ctl.watch(900.0, [&](const ToneEvent&) { ++onsets; });
  ctl.start();
  channel.emit(source, tone(900.0, 0.1, 0.5), 0.1);  // 10 hops long
  loop.schedule_at(net::from_seconds(1.0), [&] { ctl.stop(); });
  loop.run();
  EXPECT_EQ(onsets, 1);
}

TEST_F(ControllerFixture, SeparatedBurstsYieldSeparateOnsets) {
  MdnController ctl(loop, channel, config());
  int onsets = 0;
  ctl.watch(900.0, [&](const ToneEvent&) { ++onsets; });
  ctl.start();
  channel.emit(source, tone(900.0, 0.1, 0.08), 0.1);
  channel.emit(source, tone(900.0, 0.1, 0.08), 0.5);
  loop.schedule_at(net::from_seconds(1.0), [&] { ctl.stop(); });
  loop.run();
  EXPECT_EQ(onsets, 2);
}

TEST_F(ControllerFixture, UnwatchedFrequencyIgnoredByHandlersButLogged) {
  MdnController ctl(loop, channel, config());
  int fired = 0;
  ctl.watch(700.0, [&](const ToneEvent&) { ++fired; });
  ctl.start();
  channel.emit(source, tone(1500.0, 0.1, 0.08), 0.1);
  loop.schedule_at(net::from_seconds(0.5), [&] { ctl.stop(); });
  loop.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(ctl.event_log().empty());  // log covers watched tones only
}

TEST_F(ControllerFixture, WatchAllBindsWholeSet) {
  MdnController ctl(loop, channel, config());
  std::vector<double> heard;
  const std::vector<double> set{500.0, 520.0, 540.0};
  ctl.watch_all(set, [&](const ToneEvent& ev) {
    heard.push_back(ev.frequency_hz);
  });
  ctl.start();
  channel.emit(source, tone(520.0, 0.1, 0.08), 0.1);
  channel.emit(source, tone(540.0, 0.1, 0.08), 0.4);
  loop.schedule_at(net::from_seconds(0.8), [&] { ctl.stop(); });
  loop.run();
  ASSERT_EQ(heard.size(), 2u);
  EXPECT_DOUBLE_EQ(heard[0], 520.0);
  EXPECT_DOUBLE_EQ(heard[1], 540.0);
}

TEST_F(ControllerFixture, StopHaltsListening) {
  MdnController ctl(loop, channel, config());
  int fired = 0;
  ctl.watch(700.0, [&](const ToneEvent&) { ++fired; });
  ctl.start();
  loop.schedule_at(net::from_seconds(0.2), [&] { ctl.stop(); });
  channel.emit(source, tone(700.0, 0.1, 0.08), 0.5);  // after stop
  loop.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(ctl.running());
}

TEST_F(ControllerFixture, KeepRecordingCapturesAudio) {
  auto cfg = config();
  cfg.keep_recording = true;
  MdnController ctl(loop, channel, cfg);
  ctl.start();
  channel.emit(source, tone(700.0, 0.2, 0.1), 0.1);
  loop.schedule_at(net::from_seconds(0.5), [&] { ctl.stop(); });
  loop.run();
  // ~0.5 s of audio captured.
  EXPECT_NEAR(ctl.recording().duration_s(), 0.5, 0.1);
  EXPECT_GT(ctl.recording().peak(), 0.1);
}

TEST_F(ControllerFixture, BlocksProcessedCounts) {
  MdnController ctl(loop, channel, config());
  ctl.start();
  loop.schedule_at(net::from_seconds(0.5), [&] { ctl.stop(); });
  loop.run();
  // 50 ms hop over 0.5 s -> ~10 blocks.
  EXPECT_NEAR(static_cast<double>(ctl.blocks_processed()), 10.0, 2.0);
}

TEST_F(ControllerFixture, EventLogAccumulates) {
  MdnController ctl(loop, channel, config());
  ctl.watch(700.0, nullptr);
  ctl.start();
  channel.emit(source, tone(700.0, 0.1, 0.08), 0.1);
  channel.emit(source, tone(700.0, 0.1, 0.08), 0.4);
  loop.schedule_at(net::from_seconds(0.8), [&] { ctl.stop(); });
  loop.run();
  EXPECT_EQ(ctl.event_log().size(), 2u);
}

TEST_F(ControllerFixture, MicNoiseFloorDoesNotTriggerWatches) {
  auto cfg = config();
  cfg.microphone.noise_floor_rms = 5e-4;
  MdnController ctl(loop, channel, cfg);
  int fired = 0;
  ctl.watch(700.0, [&](const ToneEvent&) { ++fired; });
  ctl.start();
  loop.schedule_at(net::from_seconds(1.0), [&] { ctl.stop(); });
  loop.run();
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace mdn::core
