// Property test: random payloads round-trip through the melody codec
// over a clean channel, for every seed and several payload lengths.
#include <gtest/gtest.h>

#include "audio/audio.h"
#include "mdn/melody_codec.h"
#include "mp/mp.h"

namespace mdn::core {
namespace {

constexpr double kSampleRate = 48000.0;

class MelodyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MelodyProperty, RandomPayloadRoundTrips) {
  audio::Rng rng(GetParam());
  const std::size_t length = 1 + rng.below(12);
  std::vector<std::uint8_t> payload(length);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));

  net::EventLoop loop;
  audio::AcousticChannel channel(kSampleRate);
  FrequencyPlan plan({.base_hz = 1000.0, .spacing_hz = 20.0});
  const auto dev = plan.add_device("s1", kMelodyAlphabetSize);
  const auto spk =
      channel.add_source("pi", rng.uniform(0.3, 1.5));
  mp::PiSpeakerBridge bridge(loop, channel, spk, 0);
  mp::MpEmitter emitter(loop, bridge, 0);

  MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  MdnController controller(loop, channel, ccfg);

  MelodyCodecConfig cfg;
  cfg.demod_threshold = 0.02;
  MelodyEncoder encoder(loop, emitter, plan, dev, cfg);
  MelodyDecoder decoder(controller, plan, dev, cfg);
  controller.start();

  const double airtime = encoder.send(payload);
  loop.schedule_at(net::from_seconds(airtime + 0.4),
                   [&] { controller.stop(); });
  loop.run();

  ASSERT_EQ(decoder.frames_ok(), 1u)
      << "seed " << GetParam() << " length " << length;
  EXPECT_EQ(decoder.messages().front(), payload);
  EXPECT_EQ(decoder.frames_bad_checksum(), 0u);
}

TEST_P(MelodyProperty, CorruptedSymbolNeverDeliversWrongBytes) {
  // Flip one data symbol of the frame before transmission: the decoder
  // must reject (bad checksum), never deliver corrupted bytes.
  audio::Rng rng(GetParam() + 500);
  std::vector<std::uint8_t> payload(3);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.below(256));

  auto symbols = melody_frame_symbols(payload);
  // Pick a data symbol (not START/END) and change its nibble value.
  const std::size_t victim = 1 + rng.below(symbols.size() - 2);
  symbols[victim] = (symbols[victim] + 1 + rng.below(15)) % 16;

  net::EventLoop loop;
  audio::AcousticChannel channel(kSampleRate);
  FrequencyPlan plan({.base_hz = 1000.0, .spacing_hz = 20.0});
  const auto dev = plan.add_device("s1", kMelodyAlphabetSize);
  const auto spk = channel.add_source("pi", 0.5);
  mp::PiSpeakerBridge bridge(loop, channel, spk, 0);
  mp::MpEmitter emitter(loop, bridge, 0);

  MdnController::Config ccfg;
  ccfg.detector.sample_rate = kSampleRate;
  MdnController controller(loop, channel, ccfg);
  MelodyCodecConfig cfg;
  MelodyDecoder decoder(controller, plan, dev, cfg);
  controller.start();

  // Hand-play the corrupted frame with the codec's timing.
  const double step = cfg.tone_duration_s + cfg.gap_s;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const double freq = plan.frequency(dev, symbols[i]);
    loop.schedule_at(net::from_seconds(i * step), [&, freq] {
      emitter.emit(freq, cfg.tone_duration_s, cfg.intensity_db_spl);
    });
  }
  loop.schedule_at(
      net::from_seconds(symbols.size() * step + 0.4),
      [&] { controller.stop(); });
  loop.run();

  EXPECT_EQ(decoder.frames_ok(), 0u);
  EXPECT_EQ(decoder.frames_bad_checksum(), 1u);
  EXPECT_TRUE(decoder.messages().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MelodyProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace mdn::core
