#include "mdn/deployment.h"

#include <gtest/gtest.h>

#include "mdn/controller.h"

namespace mdn::core {
namespace {

constexpr double kSampleRate = 48000.0;

struct RigFixture : ::testing::Test {
  RigFixture() : channel(kSampleRate) {}

  net::EventLoop loop;
  audio::AcousticChannel channel;
  FrequencyPlan plan;
};

TEST_F(RigFixture, AllocatesDeviceAndSpeaker) {
  SpeakerRig rig(loop, channel, plan, "s1", {.symbols = 4});
  EXPECT_EQ(plan.device_count(), 1u);
  EXPECT_EQ(plan.device_name(rig.device()), "s1");
  EXPECT_EQ(plan.symbol_count(rig.device()), 4u);
  EXPECT_EQ(channel.source_count(), 1u);
  EXPECT_EQ(channel.source_name(rig.speaker()), "s1-speaker");
  EXPECT_DOUBLE_EQ(rig.frequency(0), plan.frequency(rig.device(), 0));
}

TEST_F(RigFixture, TwoRigsGetDisjointSets) {
  SpeakerRig a(loop, channel, plan, "s1", {.symbols = 3});
  SpeakerRig b(loop, channel, plan, "s2", {.symbols = 3});
  EXPECT_NE(a.device(), b.device());
  EXPECT_NE(a.frequency(0), b.frequency(0));
  EXPECT_EQ(channel.source_count(), 2u);
}

TEST_F(RigFixture, SingIsHeardEndToEnd) {
  SpeakerRig rig(loop, channel, plan, "s1", {.symbols = 2});
  MdnController::Config cfg;
  cfg.detector.sample_rate = kSampleRate;
  MdnController listener(loop, channel, cfg);
  int heard = 0;
  listener.watch(rig.frequency(1),
                 [&heard](const ToneEvent&) { ++heard; });
  listener.start();

  loop.schedule_at(100 * net::kMillisecond,
                   [&] { EXPECT_TRUE(rig.sing(1, 0.06, 75.0)); });
  loop.schedule_at(net::from_seconds(0.5), [&] { listener.stop(); });
  loop.run();
  EXPECT_EQ(heard, 1);
}

TEST_F(RigFixture, MinGapPoliceApplies) {
  SpeakerRig rig(loop, channel, plan, "s1",
                 {.symbols = 1, .emitter_min_gap = net::kSecond});
  EXPECT_TRUE(rig.sing(0));
  EXPECT_FALSE(rig.sing(0));  // policed
  EXPECT_EQ(rig.emitter().suppressed(), 1u);
}

TEST_F(RigFixture, PositionSetsDistanceAttenuation) {
  // Wide slot spacing so the Goertzel level of one tone does not leak
  // into the other's slot over a short block.
  FrequencyPlan wide({.base_hz = 500.0, .spacing_hz = 300.0});
  SpeakerRig near(loop, channel, wide, "near",
                  {.symbols = 1, .position = {0.5, 0.0}});
  SpeakerRig far(loop, channel, wide, "far",
                 {.symbols = 1, .position = {5.0, 0.0}});
  near.sing(0, 0.05, 94.0);
  far.sing(0, 0.05, 94.0);
  loop.run();
  // Rendered at the origin, the near speaker is ~10x louder.
  const auto w = channel.render(0.0, 0.06);
  core::ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  core::ToneDetector det(cfg);
  const auto levels = det.set_levels(
      w.samples(), std::vector<double>{near.frequency(0), far.frequency(0)});
  EXPECT_NEAR(levels[0] / levels[1], 10.0, 1.5);
}

}  // namespace
}  // namespace mdn::core
