// Multi-class fan anomaly recognition (§7 open question 1).
#include "mdn/fan_anomaly.h"

#include <gtest/gtest.h>

#include "audio/fan.h"

namespace mdn::core {
namespace {

constexpr double kSampleRate = 48000.0;

// The four machine states with audibly distinct signatures.
audio::FanSpec healthy_fan(std::uint64_t seed = 11) {
  audio::FanSpec spec;
  spec.rpm = 4200.0;
  spec.blades = 7;
  spec.tone_amplitude = 0.25;
  spec.broadband_rms = 0.05;
  spec.seed = seed;
  return spec;
}

audio::FanSpec bearing_wear_fan(std::uint64_t seed = 12) {
  auto spec = healthy_fan(seed);
  spec.harmonics = 12;          // the rattle excites a rich harmonic stack
  spec.tone_amplitude = 0.4;    // imbalance pumps the tonal content
  spec.rpm_jitter = 0.004;      // slight speed instability
  return spec;
}

audio::FanSpec obstructed_fan(std::uint64_t seed = 13) {
  auto spec = healthy_fan(seed);
  spec.rpm *= 0.7;              // stalled airflow slows the blades
  spec.broadband_rms = 0.15;    // turbulence roars
  return spec;
}

audio::Waveform record(const audio::FanSpec* fan,
                       const audio::Waveform& room, double duration_s,
                       std::uint64_t variant = 0) {
  audio::Waveform mix(kSampleRate,
                      static_cast<std::size_t>(duration_s * kSampleRate));
  mix.mix_at(room.slice(0, mix.size()), 0);
  if (fan != nullptr) {
    auto spec = *fan;
    spec.seed += variant * 1000;
    mix.mix_at(audio::generate_fan(spec, duration_s, kSampleRate), 0);
  }
  return mix;
}

struct AnomalyFixture : ::testing::Test {
  void SetUp() override {
    const auto h = healthy_fan();
    const auto b = bearing_wear_fan();
    const auto o = obstructed_fan();
    classifier.add_reference("healthy", record(&h, room, 2.0));
    classifier.add_reference("stopped", record(nullptr, room, 2.0));
    classifier.add_reference("bearing-wear", record(&b, room, 2.0));
    classifier.add_reference("obstructed", record(&o, room, 2.0));
  }

  audio::Waveform room =
      audio::generate_office(4.0, kSampleRate, 0.02, 31);
  FanAnomalyClassifier classifier{kSampleRate};
};

TEST_F(AnomalyFixture, FourReferencesRegistered) {
  EXPECT_EQ(classifier.reference_count(), 4u);
  const auto labels = classifier.labels();
  EXPECT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], "healthy");
}

TEST_F(AnomalyFixture, RecognisesEachState) {
  const auto h = healthy_fan();
  const auto b = bearing_wear_fan();
  const auto o = obstructed_fan();
  // Fresh noise realisations (variant != 0) — not the training audio.
  EXPECT_EQ(classifier.classify_majority(record(&h, room, 1.0, 1)).label,
            "healthy");
  EXPECT_EQ(classifier.classify_majority(record(nullptr, room, 1.0, 1)).label,
            "stopped");
  EXPECT_EQ(classifier.classify_majority(record(&b, room, 1.0, 1)).label,
            "bearing-wear");
  EXPECT_EQ(classifier.classify_majority(record(&o, room, 1.0, 1)).label,
            "obstructed");
}

TEST_F(AnomalyFixture, MarginPositiveOnCleanInputs) {
  const auto h = healthy_fan();
  const auto result = classifier.classify(record(&h, room, 1.0, 2));
  EXPECT_EQ(result.label, "healthy");
  EXPECT_GT(result.margin, 0.0);
  EXPECT_GT(result.distance, 0.0);
}

TEST_F(AnomalyFixture, ReAddingLabelReplacesReference) {
  const auto h = healthy_fan(99);
  classifier.add_reference("healthy", record(&h, room, 2.0));
  EXPECT_EQ(classifier.reference_count(), 4u);
}

TEST(FanAnomaly, NeedsTwoReferences) {
  FanAnomalyClassifier c(kSampleRate);
  const auto room = audio::generate_office(2.0, kSampleRate, 0.02, 1);
  const auto h = healthy_fan();
  c.add_reference("healthy", record(&h, room, 2.0));
  EXPECT_THROW(c.classify(record(&h, room, 1.0)), std::logic_error);
}

TEST(FanAnomaly, ShortRecordingsRejected) {
  FanAnomalyClassifier c(kSampleRate);
  const audio::Waveform tiny(kSampleRate, std::size_t{100});
  EXPECT_THROW(c.add_reference("x", tiny), std::invalid_argument);
}

TEST(FanAnomaly, InvalidSampleRateThrows) {
  EXPECT_THROW(FanAnomalyClassifier(0.0), std::invalid_argument);
}

TEST_F(AnomalyFixture, WorksInDatacenterNoiseToo) {
  const auto dc =
      audio::generate_machine_room(15, 4.0, kSampleRate, 0.15, 32);
  FanAnomalyClassifier noisy(kSampleRate);
  const auto h = healthy_fan();
  const auto b = bearing_wear_fan();
  noisy.add_reference("healthy", record(&h, dc, 2.0));
  noisy.add_reference("stopped", record(nullptr, dc, 2.0));
  noisy.add_reference("bearing-wear", record(&b, dc, 2.0));

  EXPECT_EQ(noisy.classify_majority(record(&h, dc, 1.0, 3)).label,
            "healthy");
  EXPECT_EQ(noisy.classify_majority(record(nullptr, dc, 1.0, 3)).label,
            "stopped");
  EXPECT_EQ(noisy.classify_majority(record(&b, dc, 1.0, 3)).label,
            "bearing-wear");
}

}  // namespace
}  // namespace mdn::core
