// Steady-state allocation audit for the tone-detection hot path.
//
// This test lives in its own binary because it replaces the global
// operator new/delete with counting versions: after one warm-up call
// (which sizes the thread-local scratch and the caller's output vector),
// ToneDetector::detect_into and set_levels_into must perform zero heap
// allocations — the "execute hot" half of the plan layer's contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <numbers>
#include <vector>

#include "dsp/goertzel.h"
#include "mdn/tone_detector.h"

namespace {

std::atomic<long long> g_news{0};

}  // namespace

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mdn::core {
namespace {

std::vector<double> tone_block(double freq, std::size_t n, double sr) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 0.5 * std::sin(2.0 * std::numbers::pi * freq *
                          static_cast<double>(i) / sr);
  }
  return v;
}

TEST(DetectAlloc, SteadyStateDetectIntoAllocatesNothing) {
  ToneDetectorConfig cfg;  // block_size = 2400 matches the block below
  const ToneDetector detector(cfg);
  const auto block = tone_block(440.0, 2400, cfg.sample_rate);

  std::vector<DetectedTone> out;
  // Warm-up: builds the thread-local scratch and sizes `out`.
  detector.detect_into(block, out);
  ASSERT_FALSE(out.empty());

  const long long before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    detector.detect_into(block, out);
  }
  const long long after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << (after - before) << " allocations across 100 steady-state calls";
  EXPECT_FALSE(out.empty());
}

TEST(DetectAlloc, SteadyStateGoertzelBankAllocatesNothing) {
  ToneDetectorConfig cfg;
  const ToneDetector detector(cfg);
  const std::vector<double> watch{440.0, 880.0, 1320.0};
  const dsp::GoertzelBank bank(watch, cfg.sample_rate);
  const auto block = tone_block(880.0, 2400, cfg.sample_rate);

  std::vector<double> levels(bank.size());
  detector.set_levels_into(block, bank, levels);  // warm-up

  const long long before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    detector.set_levels_into(block, bank, levels);
  }
  const long long after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << (after - before) << " allocations across 100 steady-state calls";
  EXPECT_GT(levels[1], levels[0]);
}

}  // namespace
}  // namespace mdn::core
