#include "mdn/fan_failure.h"

#include <gtest/gtest.h>

#include "audio/fan.h"

namespace mdn::core {
namespace {

constexpr double kSampleRate = 48000.0;

audio::FanSpec server_fan() {
  audio::FanSpec spec;
  spec.rpm = 4200.0;
  spec.blades = 7;
  spec.tone_amplitude = 0.25;
  spec.broadband_rms = 0.05;
  spec.seed = 11;
  return spec;
}

// Recording of the monitored server with `fan_on`, over `background`.
audio::Waveform record(bool fan_on, const audio::Waveform& background,
                       double duration_s, std::uint64_t seed = 21) {
  audio::Waveform mix(kSampleRate,
                      static_cast<std::size_t>(duration_s * kSampleRate));
  mix.mix_at(background.slice(0, mix.size()), 0);
  if (fan_on) {
    auto spec = server_fan();
    spec.seed = seed;
    mix.mix_at(audio::generate_fan(spec, duration_s, kSampleRate), 0);
  }
  return mix;
}

struct FanFixture : ::testing::Test {
  // 8192-sample segments -> 4 s baseline gives ~23 segments.
  audio::Waveform office =
      audio::generate_office(6.0, kSampleRate, 0.02, 31);
  audio::Waveform datacenter =
      audio::generate_machine_room(15, 6.0, kSampleRate, 0.15, 32);
};

TEST_F(FanFixture, CalibrationRequiresEnoughSegments) {
  FanFailureDetector det(kSampleRate);
  const auto tiny = record(true, office, 0.1);
  EXPECT_THROW(det.calibrate(tiny), std::invalid_argument);
  EXPECT_FALSE(det.calibrated());
}

TEST_F(FanFixture, UncalibratedUseThrows) {
  FanFailureDetector det(kSampleRate);
  const auto sample = record(true, office, 0.2);
  EXPECT_THROW(det.difference(sample), std::logic_error);
  EXPECT_THROW(det.is_failed(sample), std::logic_error);
  EXPECT_THROW(det.threshold(), std::logic_error);
}

TEST_F(FanFixture, OfficeOnVsOnStaysBelowThreshold) {
  FanFailureDetector det(kSampleRate);
  det.calibrate(record(true, office, 4.0));
  // A fresh on-recording (different noise phase) is not a failure.
  const auto fresh = record(true, office, 0.5, /*seed=*/77);
  EXPECT_FALSE(det.is_failed(fresh));
}

TEST_F(FanFixture, OfficeOffDetected) {
  FanFailureDetector det(kSampleRate);
  det.calibrate(record(true, office, 4.0));
  const auto off = record(false, office, 0.5);
  EXPECT_TRUE(det.is_failed(off));
  // The Fig 7 separation: off-diff well above on-diff.
  EXPECT_GT(det.difference(off),
            2.0 * det.difference(record(true, office, 0.5, 78)));
}

TEST_F(FanFixture, DatacenterOffDetectedDespiteRoomNoise) {
  // The paper's headline question: "Can we detect the failure of a
  // single server despite the typical datacenter noise?"
  FanFailureDetector det(kSampleRate);
  det.calibrate(record(true, datacenter, 4.0));
  EXPECT_TRUE(det.is_failed(record(false, datacenter, 0.5)));
  EXPECT_FALSE(det.is_failed(record(true, datacenter, 0.5, 79)));
}

TEST_F(FanFixture, ThresholdIsMeanPlusSigmas) {
  FanDetectorConfig cfg;
  cfg.sigma_factor = 6.0;
  FanFailureDetector det(kSampleRate, cfg);
  det.calibrate(record(true, office, 4.0));
  EXPECT_NEAR(det.threshold(),
              det.baseline_mean() + 6.0 * det.baseline_std(), 1e-9);
  EXPECT_GT(det.baseline_mean(), 0.0);
}

TEST_F(FanFixture, DifferenceSeriesSeparatesStates) {
  FanFailureDetector det(kSampleRate);
  det.calibrate(record(true, datacenter, 4.0));

  const auto on_series = det.difference_series(record(true, datacenter, 2.0, 80));
  const auto off_series = det.difference_series(record(false, datacenter, 2.0));
  ASSERT_GT(on_series.size(), 3u);
  ASSERT_GT(off_series.size(), 3u);
  double max_on = 0.0, min_off = 1e300;
  for (double d : on_series) max_on = std::max(max_on, d);
  for (double d : off_series) min_off = std::min(min_off, d);
  // Fully separable populations (the blue/red gap of Fig 7).
  EXPECT_GT(min_off, max_on);
}

TEST_F(FanFixture, InvalidConfigThrows) {
  EXPECT_THROW(FanFailureDetector(0.0), std::invalid_argument);
  FanDetectorConfig bad;
  bad.band_lo_hz = 5000.0;
  bad.band_hi_hz = 100.0;
  EXPECT_THROW(FanFailureDetector(kSampleRate, bad), std::invalid_argument);
}

TEST_F(FanFixture, DifferentFanSpeedStillDetectedAsChange) {
  // A failing bearing often shifts speed before stopping: a fan running
  // 30% slow also exceeds the on-vs-on threshold.
  FanFailureDetector det(kSampleRate);
  det.calibrate(record(true, office, 4.0));
  auto slow_spec = server_fan();
  slow_spec.rpm *= 0.7;
  audio::Waveform slow(kSampleRate,
                       static_cast<std::size_t>(0.5 * kSampleRate));
  slow.mix_at(office.slice(0, slow.size()), 0);
  slow.mix_at(audio::generate_fan(slow_spec, 0.5, kSampleRate), 0);
  EXPECT_TRUE(det.is_failed(slow));
}

}  // namespace
}  // namespace mdn::core
