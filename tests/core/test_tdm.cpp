// TDM slot coordination of the acoustic medium (§3 research direction).
#include "mdn/tdm.h"

#include <gtest/gtest.h>

#include "audio/audio.h"
#include "mdn/tone_detector.h"
#include "mp/mp.h"

namespace mdn::core {
namespace {

constexpr double kSampleRate = 48000.0;
using net::kMillisecond;

struct TdmFixture : ::testing::Test {
  TdmFixture()
      : channel(kSampleRate),
        speaker(channel.add_source("spk", 0.5)),
        bridge(loop, channel, speaker, 0),
        emitter(loop, bridge, 0) {}

  net::EventLoop loop;
  audio::AcousticChannel channel;
  audio::SourceId speaker;
  mp::PiSpeakerBridge bridge;
  mp::MpEmitter emitter;
  TdmSchedule schedule{.frame = 600 * kMillisecond, .slot_count = 2};
};

TEST_F(TdmFixture, SlotMembershipMath) {
  TdmEmitter slot0(loop, emitter, schedule, 0);
  TdmEmitter slot1(loop, emitter, schedule, 1);
  // Frame 600 ms, two 300 ms slots.
  EXPECT_TRUE(slot0.in_slot(0));
  EXPECT_TRUE(slot0.in_slot(299 * kMillisecond));
  EXPECT_FALSE(slot0.in_slot(300 * kMillisecond));
  EXPECT_TRUE(slot1.in_slot(300 * kMillisecond));
  EXPECT_FALSE(slot1.in_slot(0));
  // Periodicity.
  EXPECT_TRUE(slot0.in_slot(600 * kMillisecond));
  EXPECT_TRUE(slot1.in_slot(901 * kMillisecond));
}

TEST_F(TdmFixture, NextSlotStart) {
  TdmEmitter slot1(loop, emitter, schedule, 1);
  EXPECT_EQ(slot1.next_slot_start(0), 300 * kMillisecond);
  EXPECT_EQ(slot1.next_slot_start(300 * kMillisecond),
            300 * kMillisecond);
  EXPECT_EQ(slot1.next_slot_start(301 * kMillisecond),
            900 * kMillisecond);
}

TEST_F(TdmFixture, InSlotEmissionIsImmediate) {
  TdmEmitter slot0(loop, emitter, schedule, 0);
  EXPECT_TRUE(slot0.emit(700.0, 0.05, 70.0));
  EXPECT_EQ(slot0.immediate(), 1u);
  EXPECT_EQ(bridge.played(), 1u);
}

TEST_F(TdmFixture, OutOfSlotEmissionDeferredToSlotStart) {
  TdmEmitter slot1(loop, emitter, schedule, 1);
  EXPECT_FALSE(slot1.emit(700.0, 0.05, 70.0));  // t=0, slot starts at 300ms
  EXPECT_EQ(bridge.played(), 0u);
  loop.run();
  EXPECT_EQ(bridge.played(), 1u);
  EXPECT_EQ(loop.now(), 300 * kMillisecond);
  EXPECT_EQ(slot1.deferred(), 1u);
}

TEST_F(TdmFixture, NewerDeferredRequestReplacesOlder) {
  TdmEmitter slot1(loop, emitter, schedule, 1);
  slot1.emit(500.0, 0.05, 70.0);
  slot1.emit(900.0, 0.05, 70.0);  // replaces the 500 Hz request
  loop.run();
  EXPECT_EQ(bridge.played(), 1u);
  EXPECT_EQ(slot1.replaced(), 1u);
  // The surviving tone is the 900 Hz one.
  const auto rendered = channel.render(0.3, 0.06);
  ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  ToneDetector det(cfg);
  EXPECT_TRUE(det.present(rendered.samples(), 900.0));
  EXPECT_FALSE(det.present(rendered.samples(), 500.0));
}

TEST_F(TdmFixture, TwoAppsNeverOverlapInTime) {
  // Both apps emit on demand at random times; emissions must land inside
  // their own slots only.
  mp::PiSpeakerBridge bridge2(loop, channel, speaker, 0);
  mp::MpEmitter raw2(loop, bridge2, 0);
  TdmEmitter app0(loop, emitter, schedule, 0);
  TdmEmitter app1(loop, raw2, schedule, 1);

  std::vector<net::SimTime> app0_times, app1_times;
  audio::Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const auto t = static_cast<net::SimTime>(rng.below(3'000'000'000ULL));
    loop.schedule_at(t, [&, i] {
      if (i % 2 == 0) {
        if (app0.emit(500.0, 0.02, 70.0)) app0_times.push_back(loop.now());
      } else {
        if (app1.emit(700.0, 0.02, 70.0)) app1_times.push_back(loop.now());
      }
    });
  }
  // Capture deferred flushes too, via the emitters' own counters + the
  // slot invariant below (checked on the bridges' play times through the
  // emit wrappers): we simply re-check in_slot at every immediate emit.
  loop.run();
  for (const auto t : app0_times) EXPECT_TRUE(app0.in_slot(t));
  for (const auto t : app1_times) EXPECT_TRUE(app1.in_slot(t));
  // Everything requested was eventually played or replaced.
  EXPECT_EQ(bridge.played() + app0.replaced(),
            app0.immediate() + app0.deferred());
  EXPECT_EQ(bridge2.played() + app1.replaced(),
            app1.immediate() + app1.deferred());
}

TEST_F(TdmFixture, InvalidScheduleRejected) {
  EXPECT_THROW(TdmEmitter(loop, emitter, {.frame = 0, .slot_count = 2}, 0),
               std::invalid_argument);
  EXPECT_THROW(TdmEmitter(loop, emitter,
                          {.frame = kMillisecond, .slot_count = 0}, 0),
               std::invalid_argument);
  EXPECT_THROW(
      TdmEmitter(loop, emitter, {.frame = kMillisecond, .slot_count = 2}, 2),
      std::invalid_argument);
}

TEST_F(TdmFixture, ThreeWaySchedule) {
  TdmSchedule three{.frame = 900 * kMillisecond, .slot_count = 3};
  TdmEmitter a(loop, emitter, three, 0);
  TdmEmitter b(loop, emitter, three, 1);
  TdmEmitter c(loop, emitter, three, 2);
  EXPECT_TRUE(a.in_slot(100 * kMillisecond));
  EXPECT_TRUE(b.in_slot(400 * kMillisecond));
  EXPECT_TRUE(c.in_slot(700 * kMillisecond));
  EXPECT_FALSE(c.in_slot(100 * kMillisecond));
}

}  // namespace
}  // namespace mdn::core
