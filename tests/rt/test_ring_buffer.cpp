// Unit tests for the runtime's lock-free bounded ring: wrap-around,
// full/empty boundaries, move-only payloads, and single-producer/
// single-consumer interleavings (the concurrency tests double as the
// ThreadSanitizer workload for the CI tsan job).
#include "rt/ring_buffer.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace mdn::rt {
namespace {

TEST(RingBuffer, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(RingBuffer<int>(0).capacity(), 2u);
  EXPECT_EQ(RingBuffer<int>(1).capacity(), 2u);
  EXPECT_EQ(RingBuffer<int>(2).capacity(), 2u);
  EXPECT_EQ(RingBuffer<int>(3).capacity(), 4u);
  EXPECT_EQ(RingBuffer<int>(64).capacity(), 64u);
  EXPECT_EQ(RingBuffer<int>(65).capacity(), 128u);
}

TEST(RingBuffer, PopOnEmptyFails) {
  RingBuffer<int> ring(4);
  int out = -1;
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, -1);  // untouched
}

TEST(RingBuffer, PushOnFullFails) {
  RingBuffer<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.try_push(99));
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);  // FIFO, and the rejected 99 was not enqueued
}

TEST(RingBuffer, FifoOrderAcrossWrapAround) {
  RingBuffer<int> ring(4);
  int out = 0;
  int next_push = 0;
  int next_pop = 0;
  // Push/pop far more items than the capacity, crossing the index mask
  // many times, with a varying in-flight depth.
  for (int round = 0; round < 100; ++round) {
    const int burst = 1 + round % 4;
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.try_push(int{next_push}));
      ++next_push;
    }
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, FullEmptyBoundaryIsExact) {
  RingBuffer<int> ring(8);
  // Fill to exactly capacity, drain to exactly empty, twice.
  for (int lap = 0; lap < 2; ++lap) {
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(ring.try_push(int{i}));
    EXPECT_FALSE(ring.try_push(8));
    EXPECT_EQ(ring.size(), 8u);
    int out;
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(ring.try_pop(out));
    EXPECT_FALSE(ring.try_pop(out));
    EXPECT_EQ(ring.size(), 0u);
  }
}

TEST(RingBuffer, MoveOnlyPayload) {
  RingBuffer<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(RingBuffer, ProducerSidePopSupportsDropOldest) {
  // The DropOldest policy reclaims the stalest element from the producer
  // side; per-slot sequence numbers make that a plain pop.
  RingBuffer<int> ring(2);
  ASSERT_TRUE(ring.try_push(1));
  ASSERT_TRUE(ring.try_push(2));
  ASSERT_FALSE(ring.try_push(3));
  int oldest;
  ASSERT_TRUE(ring.try_pop(oldest));
  EXPECT_EQ(oldest, 1);
  ASSERT_TRUE(ring.try_push(3));
  int out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 3);
}

TEST(RingBuffer, SpscInterleavingDeliversEverythingInOrder) {
  constexpr int kItems = 100000;
  RingBuffer<int> ring(16);
  std::thread producer([&ring] {
    for (int i = 0; i < kItems; ++i) {
      while (!ring.try_push(int{i})) std::this_thread::yield();
    }
  });
  int expected = 0;
  while (expected < kItems) {
    int out;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(RingBuffer, SpscVectorPayloadTransfersIntact) {
  // The runtime moves whole sample buffers through the ring; verify the
  // payload arrives unscrambled under concurrency.
  constexpr int kItems = 5000;
  RingBuffer<std::vector<int>> ring(8);
  std::thread producer([&ring] {
    for (int i = 0; i < kItems; ++i) {
      std::vector<int> v{i, i + 1, i + 2};
      while (!ring.try_push(std::move(v))) std::this_thread::yield();
    }
  });
  int received = 0;
  std::vector<int> out;
  while (received < kItems) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out.size(), 3u);
      ASSERT_EQ(out[0], received);
      ASSERT_EQ(out[1], received + 1);
      ASSERT_EQ(out[2], received + 2);
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
}

}  // namespace
}  // namespace mdn::rt
