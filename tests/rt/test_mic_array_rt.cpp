// MicArray × StreamRuntime integration: 8 microphones share one
// acoustic channel; the serial path (each MdnController detecting
// inline) and the runtime path (controllers as pure producers, sharded
// workers, ordered merge feeding MicArray::ingest_event) must produce
// *identical* MergedEvent streams — same order, same doubles, same
// first_mic attributions — at every worker count.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "audio/audio.h"
#include "mdn/frequency_plan.h"
#include "mdn/mic_array.h"
#include "rt/stream_runtime.h"

namespace mdn::rt {
namespace {

constexpr double kSampleRate = 48000.0;
constexpr std::size_t kMics = 8;

core::MdnController::Config mic_config(std::size_t m) {
  core::MdnController::Config cfg;
  cfg.detector.sample_rate = kSampleRate;
  cfg.detector.min_amplitude = 0.02;  // tones fade out within ~5 m
  cfg.microphone.position = {2.0 * static_cast<double>(m), 0.0};
  return cfg;
}

/// One shared emission schedule: bursts near different microphones, two
/// of them simultaneous, so merged events span single- and multi-mic
/// hearings in the same run.
void emit_schedule(audio::AcousticChannel& channel,
                   const std::vector<audio::SourceId>& sources,
                   const core::FrequencyPlan& plan,
                   const std::vector<core::DeviceId>& devices) {
  auto play = [&](std::size_t src, std::size_t dev, double at_s) {
    audio::ToneSpec spec;
    spec.frequency_hz = plan.frequency(devices[dev], 0);
    spec.duration_s = 0.08;
    spec.amplitude = audio::spl_to_amplitude(88.0);
    channel.emit(sources[src], audio::make_tone(spec, kSampleRate), at_s);
  };
  play(0, 0, 0.20);
  play(3, 1, 0.45);
  play(1, 2, 0.45);  // simultaneous with the burst above, different rack
  play(2, 3, 0.70);
  play(0, 0, 0.95);  // rack 0 repeats, past the dedup window
}

struct Scenario {
  Scenario() : channel(kSampleRate), plan({.base_hz = 800.0,
                                           .spacing_hz = 20.0}) {
    for (int d = 0; d < 4; ++d) {
      devices.push_back(plan.add_device("rack-" + std::to_string(d), 1));
      sources.push_back(channel.add_source_at(
          "spk-" + std::to_string(d), {4.0 * d + 1.0, 0.5}));
      watch.push_back(plan.frequency(devices.back(), 0));
    }
  }

  void run(double until_s) {
    loop.schedule_at(net::from_seconds(until_s), [this] {
      for (auto& c : controllers) c->stop();
    });
    loop.run();
  }

  net::EventLoop loop;
  audio::AcousticChannel channel;
  core::FrequencyPlan plan;
  std::vector<core::DeviceId> devices;
  std::vector<audio::SourceId> sources;
  std::vector<double> watch;
  std::vector<std::unique_ptr<core::MdnController>> controllers;
};

std::vector<core::MicArray::MergedEvent> serial_run() {
  Scenario s;
  core::MicArray array;
  for (std::size_t m = 0; m < kMics; ++m) {
    s.controllers.push_back(std::make_unique<core::MdnController>(
        s.loop, s.channel, mic_config(m)));
    array.attach(*s.controllers.back(), s.watch, "mic-" + std::to_string(m));
  }
  for (auto& c : s.controllers) c->start();
  emit_schedule(s.channel, s.sources, s.plan, s.devices);
  s.run(1.4);
  return array.events();
}

std::vector<core::MicArray::MergedEvent> runtime_run(std::size_t workers) {
  Scenario s;
  StreamRuntimeConfig rcfg;
  rcfg.workers = workers;
  rcfg.detector = mic_config(0).detector;
  rcfg.watch_hz = s.watch;
  StreamRuntime runtime(rcfg);

  core::MicArray array;
  for (std::size_t m = 0; m < kMics; ++m) {
    auto cfg = mic_config(m);
    cfg.sink = &runtime;
    cfg.sink_mic = runtime.add_mic("mic-" + std::to_string(m));
    s.controllers.push_back(
        std::make_unique<core::MdnController>(s.loop, s.channel, cfg));
    // attach() registers the microphone and its watches; in runtime mode
    // those inline handlers never fire — the merge feeds the array.
    array.attach(*s.controllers.back(), s.watch, "mic-" + std::to_string(m));
  }
  runtime.deliver_to(array);
  runtime.start();
  for (auto& c : s.controllers) c->start();
  emit_schedule(s.channel, s.sources, s.plan, s.devices);
  s.run(1.4);
  runtime.finish();
  return array.events();
}

void expect_identical(const std::vector<core::MicArray::MergedEvent>& got,
                      const std::vector<core::MicArray::MergedEvent>& want,
                      std::size_t workers) {
  ASSERT_EQ(got.size(), want.size()) << "workers=" << workers;
  for (std::size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE("workers=" + std::to_string(workers) + " event " +
                 std::to_string(i));
    EXPECT_DOUBLE_EQ(got[i].time_s, want[i].time_s);
    EXPECT_DOUBLE_EQ(got[i].frequency_hz, want[i].frequency_hz);
    EXPECT_DOUBLE_EQ(got[i].amplitude, want[i].amplitude);
    EXPECT_EQ(got[i].first_mic, want[i].first_mic);
    EXPECT_EQ(got[i].heard_by, want[i].heard_by);
  }
}

TEST(RtMicArray, EightMicsFourWorkersMatchSerialExactly) {
  const auto serial = serial_run();
  ASSERT_GE(serial.size(), 4u);  // every burst produced a merged event
  expect_identical(runtime_run(4), serial, 4);
}

TEST(RtMicArray, WorkerCountNeverChangesTheMergedStream) {
  const auto serial = serial_run();
  ASSERT_FALSE(serial.empty());
  for (std::size_t workers : {1u, 2u, 8u}) {
    expect_identical(runtime_run(workers), serial, workers);
  }
}

TEST(RtMicArray, SharedBurstHeardByMultipleMicsOnce) {
  const auto serial = serial_run();
  const auto merged = runtime_run(4);
  ASSERT_EQ(merged.size(), serial.size());
  // At least one burst reached more than one microphone and was fused
  // into a single merged event rather than duplicated per mic.
  std::size_t multi = 0;
  for (const auto& e : merged) multi += e.heard_by > 1 ? 1 : 0;
  EXPECT_GE(multi, 1u);
}

}  // namespace
}  // namespace mdn::rt
