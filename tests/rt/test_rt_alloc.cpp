// Steady-state allocation audit for the streaming runtime hot path.
//
// Own binary (it replaces global operator new/delete with counting
// versions, like tests/core/test_detect_alloc.cpp).  After warm-up the
// submit → ring → worker → merge → poll cycle must be allocation-free on
// the producer/owner thread: sample buffers recycle through the free
// ring, the merge partitions in place, and poll() reuses its scratch.
// Worker threads allocate only while warming their thread-local FFT
// scratch, so the audit runs the producer side against a quiesced pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <new>
#include <numbers>
#include <span>
#include <thread>
#include <vector>

#include "obs/health.h"
#include "obs/journal.h"
#include "rt/stream_runtime.h"

namespace {

std::atomic<long long> g_news{0};

}  // namespace

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace mdn::rt {
namespace {

constexpr double kSampleRate = 48000.0;
constexpr std::size_t kBlockSize = 2400;

std::vector<double> tone_block(double freq) {
  std::vector<double> v(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    v[i] = 0.2 * std::sin(2.0 * std::numbers::pi * freq *
                          static_cast<double>(i) / kSampleRate);
  }
  return v;
}

/// Submits `n` blocks and waits until the workers processed all of them,
/// so every sample buffer is back in the free ring before returning.
void pump(StreamRuntime& runtime, std::uint32_t mic,
          const std::vector<double>& block, int n, double* t_s) {
  const std::uint64_t target = runtime.stats().processed + n;
  for (int i = 0; i < n; ++i) {
    runtime.submit_block(mic, *t_s, block);
    *t_s += 0.05;
  }
  while (runtime.stats().processed < target) {
    std::this_thread::yield();
  }
  runtime.poll();
}

TEST(RtAlloc, SteadyStateSubmitProcessPollAllocatesNothing) {
  StreamRuntimeConfig cfg;
  cfg.workers = 1;
  cfg.ring_capacity = 8;
  cfg.detector.sample_rate = kSampleRate;
  cfg.detector.block_size = kBlockSize;
  cfg.watch_hz = {800.0};
  StreamRuntime runtime(cfg);
  const auto mic = runtime.add_mic("m");
  runtime.set_record_events(false);  // long-running mode: no event log
  runtime.start();

  // Alternate tone/silence so onsets keep flowing through the merge and
  // its pending vector reaches its high-water capacity.
  const auto tone = tone_block(800.0);
  const std::vector<double> silence(kBlockSize, 0.0);
  double t_s = 0.0;
  for (int round = 0; round < 4; ++round) {
    pump(runtime, mic, tone, 8, &t_s);
    pump(runtime, mic, silence, 8, &t_s);
  }

  const long long before = g_news.load(std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    pump(runtime, mic, tone, 8, &t_s);
    pump(runtime, mic, silence, 8, &t_s);
  }
  const long long after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << (after - before)
      << " allocations across 160 steady-state submit/process/poll cycles";

  runtime.finish();
  EXPECT_GT(runtime.stats().delivered, 0u);
}

TEST(RtAllocJournal, SteadyStateWithJournalEnabledAllocatesNothing) {
  // The flight recorder's disabled-cost rule has a twin for the enabled
  // path: append() writes into the preallocated ring, tags ride in the
  // AudioBlock's fixed array, and the poll-side detection mint is
  // in-place — so the journal-on steady state is allocation-free too.
  obs::Journal& journal = obs::Journal::global();
  journal.enable(1 << 16);  // allocates the ring once, before the audit
  journal.clear();

  StreamRuntimeConfig cfg;
  cfg.workers = 1;
  cfg.ring_capacity = 8;
  cfg.detector.sample_rate = kSampleRate;
  cfg.detector.block_size = kBlockSize;
  cfg.watch_hz = {800.0};
  StreamRuntime runtime(cfg);
  const auto mic = runtime.add_mic("m");
  runtime.set_record_events(false);
  runtime.start();

  const auto tone = tone_block(800.0);
  const std::vector<double> silence(kBlockSize, 0.0);
  double t_s = 0.0;
  const auto pump_tagged = [&](const std::vector<double>& block, int n,
                               bool tagged) {
    const std::uint64_t target = runtime.stats().processed + n;
    for (int i = 0; i < n; ++i) {
      if (tagged) {
        obs::JournalRecord emitted;
        emitted.kind = obs::JournalKind::kToneEmitted;
        emitted.sim_ns = static_cast<std::int64_t>(t_s * 1e9);
        emitted.frequency_hz = 800.0;
        const audio::EmissionTag tag{journal.append(emitted), 800.0};
        runtime.submit_block(mic, t_s, block,
                             std::span<const audio::EmissionTag>(&tag, 1));
      } else {
        runtime.submit_block(mic, t_s, block);
      }
      t_s += 0.05;
    }
    while (runtime.stats().processed < target) {
      std::this_thread::yield();
    }
    runtime.poll();
  };

  for (int round = 0; round < 4; ++round) {
    pump_tagged(tone, 8, true);
    pump_tagged(silence, 8, false);
  }

  const long long before = g_news.load(std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    pump_tagged(tone, 8, true);
    pump_tagged(silence, 8, false);
  }
  const long long after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << (after - before)
      << " allocations across 160 journal-enabled steady-state cycles";

  runtime.finish();
  EXPECT_GT(journal.appended(), 0u);
  journal.disable();
  journal.clear();
}

TEST(RtAllocHealth, SteadyStateWithHealthEnabledAllocatesNothing) {
  // The health estimator hooks ride the same hot path (begin_block /
  // observe_watch / end_block inside process_block): preallocated
  // per-watch state, relaxed atomics, fixed-capacity alert ring.  With
  // no SLO transition pending, the submit → process → poll cycle stays
  // allocation-free with the monitor wired in.
  obs::HealthConfig hcfg;
  hcfg.watch_count = 1;
  obs::Health health(hcfg);
  obs::SloSpec slo;  // armed but never firing in this healthy schedule
  slo.name = "mic_silent";
  slo.metric = obs::SloSpec::Metric::kSilenceS;
  slo.op = obs::SloSpec::Op::kAbove;
  slo.threshold = 1e9;
  slo.severity = obs::HealthState::kFailed;
  health.add_slo(slo);

  StreamRuntimeConfig cfg;
  cfg.workers = 1;
  cfg.ring_capacity = 8;
  cfg.detector.sample_rate = kSampleRate;
  cfg.detector.block_size = kBlockSize;
  cfg.watch_hz = {800.0};
  cfg.health = &health;
  StreamRuntime runtime(cfg);
  const auto mic = runtime.add_mic("m");
  health.add_mic("m");
  runtime.set_record_events(false);
  runtime.start();

  const auto tone = tone_block(800.0);
  const std::vector<double> silence(kBlockSize, 0.0);
  double t_s = 0.0;
  for (int round = 0; round < 4; ++round) {
    pump(runtime, mic, tone, 8, &t_s);
    pump(runtime, mic, silence, 8, &t_s);
  }

  const long long before = g_news.load(std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    pump(runtime, mic, tone, 8, &t_s);
    pump(runtime, mic, silence, 8, &t_s);
  }
  const long long after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << (after - before)
      << " allocations across 160 health-enabled steady-state cycles";

  runtime.finish();
  EXPECT_GT(health.estimator(0).blocks(), 0u);
  EXPECT_GT(health.estimator(0).min_snr_db(), 0.0);  // the tone was heard
}

}  // namespace
}  // namespace mdn::rt
