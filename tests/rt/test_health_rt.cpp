// Health monitor end-to-end through the streaming runtime (rt-linked,
// THREADED): a dying microphone in an 8-mic array — rising noise floor,
// then no signal at all — must drive exactly that mic OK -> Degraded ->
// Failed, with kHealthAlert records whose explain() chains reach the
// acoustic evidence, and the canonical health.jsonl must be
// byte-identical at 1 and 4 workers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "audio/noise.h"
#include "audio/rng.h"
#include "audio/synth.h"
#include "mdn/tone_detector.h"
#include "net/sim_time.h"
#include "obs/health.h"
#include "obs/journal.h"
#include "rt/stream_runtime.h"

namespace mdn {
namespace {

constexpr double kSampleRate = 48000.0;
constexpr std::size_t kBlockSize = 2400;  // 50 ms
constexpr double kHopS = 0.05;
constexpr double kToneHz = 800.0;
constexpr std::size_t kMics = 8;
constexpr std::uint32_t kSickMic = 3;
constexpr std::size_t kBlocks = 56;
constexpr std::size_t kRampStart = 10;  // noise ramp begins
constexpr std::size_t kDeadStart = 25;  // tone gone, noise stays

std::vector<double> tone_block(double amplitude) {
  audio::ToneSpec spec;
  spec.frequency_hz = kToneHz;
  spec.amplitude = amplitude;
  spec.duration_s = kHopS;
  spec.fade_s = 0.002;
  const audio::Waveform wave = audio::make_tone(spec, kSampleRate);
  return {wave.samples().begin(), wave.samples().end()};
}

double ramp_rms(std::size_t seq) {
  if (seq >= kDeadStart) {
    // Dead phase: the mic hears only its own electrical noise — loud
    // enough to hold the floor above the degraded threshold, but with
    // bin-level spikes well under the detection threshold so a noise
    // fluctuation can never masquerade as the watched tone and reset
    // the silence clock.
    return 0.1;
  }
  const double t = static_cast<double>(seq - kRampStart) /
                   static_cast<double>(kDeadStart - 1 - kRampStart);
  return 0.05 + (0.5 - 0.05) * std::min(t, 1.0);
}

// The sick mic's per-block samples, built once (fixed RNG seed) so the
// serial and parallel runs consume bit-identical audio.
const std::vector<std::vector<double>>& sick_blocks() {
  static const std::vector<std::vector<double>> blocks = [] {
    std::vector<std::vector<double>> out(kBlocks);
    audio::Rng rng(0x51c3u);
    const std::vector<double> tone = tone_block(0.1);
    for (std::size_t seq = 0; seq < kBlocks; ++seq) {
      if (seq < kRampStart) {
        out[seq] = tone;
        continue;
      }
      const audio::Waveform noise =
          audio::make_white_noise(kHopS, ramp_rms(seq), kSampleRate, rng);
      out[seq].assign(noise.samples().begin(), noise.samples().end());
      if (seq < kDeadStart) {
        for (std::size_t i = 0; i < out[seq].size(); ++i) {
          out[seq][i] += tone[i];
        }
      }
    }
    return out;
  }();
  return blocks;
}

// Detection threshold above the broadband-noise bin level (~0.014 at
// the full 0.5 RMS ramp): the dying mic's noise must raise the floor,
// not masquerade as the watched tone — otherwise silence never accrues.
constexpr double kMinAmplitude = 0.05;

double raw_noise_floor(const std::vector<double>& samples) {
  core::ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  cfg.block_size = kBlockSize;
  cfg.min_amplitude = kMinAmplitude;
  core::ToneDetector det(cfg);
  std::vector<core::DetectedTone> tones;
  obs::BlockSignalStats stats;
  det.detect_into(samples, tones, &stats);
  return stats.noise_floor;
}

// Noise-floor threshold between what a clean tone block measures and
// what the fully-degraded blocks measure — calibrated through the same
// detector the runtime runs, so the test tracks the estimator, not a
// hard-coded spectrum constant.
double degraded_threshold() {
  const double clean = raw_noise_floor(sick_blocks()[0]);
  const double noisy = raw_noise_floor(sick_blocks()[kDeadStart - 1]);
  EXPECT_GT(noisy, clean * 10.0) << "noise ramp too weak to discriminate";
  return std::sqrt(std::max(clean, 1e-12) * noisy);
}

struct RunResult {
  std::string jsonl;
  std::vector<obs::HealthState> states;
  std::vector<obs::HealthAlert> alerts;
  std::vector<obs::JournalRecord> first_alert_chain;
};

RunResult run(std::size_t workers) {
  obs::Journal& journal = obs::Journal::global();
  journal.enable(1 << 16);
  journal.clear();

  obs::HealthConfig hcfg;
  hcfg.watch_count = 1;
  obs::Health health(hcfg);
  obs::SloSpec degraded;
  degraded.name = "noise_floor_high";
  degraded.metric = obs::SloSpec::Metric::kNoiseFloor;
  degraded.op = obs::SloSpec::Op::kAbove;
  degraded.threshold = degraded_threshold();
  degraded.for_s = 0.2;
  degraded.severity = obs::HealthState::kDegraded;
  health.add_slo(degraded);
  obs::SloSpec failed;
  failed.name = "mic_silent";
  failed.metric = obs::SloSpec::Metric::kSilenceS;
  failed.op = obs::SloSpec::Op::kAbove;
  failed.threshold = 1.2;
  failed.severity = obs::HealthState::kFailed;
  health.add_slo(failed);

  rt::StreamRuntimeConfig config;
  config.workers = workers;
  config.ring_capacity = kBlocks + 8;
  config.drop_policy = rt::DropPolicy::kBlock;
  config.watch_hz = {kToneHz};
  config.detector.sample_rate = kSampleRate;
  config.detector.block_size = kBlockSize;
  config.detector.min_amplitude = kMinAmplitude;
  config.health = &health;

  rt::StreamRuntime runtime(config);
  for (std::size_t m = 0; m < kMics; ++m) {
    runtime.add_mic("mic" + std::to_string(m));
    health.add_mic("mic" + std::to_string(m));
  }

  const std::vector<double> healthy = tone_block(0.1);
  for (std::size_t seq = 0; seq < kBlocks; ++seq) {
    const double start_s = static_cast<double>(seq) * kHopS;
    for (std::uint32_t m = 0; m < kMics; ++m) {
      const bool sick = m == kSickMic;
      const std::vector<double>& samples =
          sick ? sick_blocks()[seq] : healthy;
      const bool has_tone = !sick || seq < kDeadStart;
      if (has_tone) {
        obs::JournalRecord emitted;
        emitted.kind = obs::JournalKind::kToneEmitted;
        emitted.sim_ns = net::from_seconds(start_s);
        emitted.frequency_hz = kToneHz;
        emitted.aux = m;
        obs::set_journal_label(emitted, "healthtone");
        const audio::EmissionTag tag{journal.append(emitted), kToneHz};
        runtime.submit_block(m, start_s, samples,
                             std::span<const audio::EmissionTag>(&tag, 1));
      } else {
        runtime.submit_block(m, start_s, samples);
      }
    }
  }
  runtime.finish();
  health.poll();

  RunResult result;
  result.jsonl = health.to_health_jsonl();
  for (std::uint32_t m = 0; m < kMics; ++m) {
    result.states.push_back(health.estimator(m).state());
  }
  result.alerts = health.alerts();
  std::sort(result.alerts.begin(), result.alerts.end(),
            [](const obs::HealthAlert& a, const obs::HealthAlert& b) {
              return a.time_s < b.time_s;
            });
  if (!result.alerts.empty() && result.alerts.front().record != 0) {
    result.first_alert_chain = journal.explain(result.alerts.front().record);
  }
  journal.disable();
  journal.clear();
  return result;
}

TEST(HealthRt, DyingMicDegradesThenFailsAndOnlyThatMic) {
  const RunResult r = run(4);

  ASSERT_EQ(r.states.size(), kMics);
  for (std::uint32_t m = 0; m < kMics; ++m) {
    if (m == kSickMic) {
      EXPECT_EQ(r.states[m], obs::HealthState::kFailed) << "mic " << m;
    } else {
      EXPECT_EQ(r.states[m], obs::HealthState::kOk) << "mic " << m;
    }
  }

  // Exactly the sick mic alerts, and it walks OK -> Degraded -> Failed.
  ASSERT_EQ(r.alerts.size(), 2u);
  for (const obs::HealthAlert& alert : r.alerts) {
    EXPECT_EQ(alert.mic, kSickMic);
  }
  EXPECT_EQ(r.alerts[0].from, obs::HealthState::kOk);
  EXPECT_EQ(r.alerts[0].to, obs::HealthState::kDegraded);
  EXPECT_EQ(r.alerts[0].rule, 0u);  // noise_floor_high
  EXPECT_EQ(r.alerts[1].from, obs::HealthState::kDegraded);
  EXPECT_EQ(r.alerts[1].to, obs::HealthState::kFailed);
  EXPECT_EQ(r.alerts[1].rule, 1u);  // mic_silent
  EXPECT_LT(r.alerts[0].time_s, r.alerts[1].time_s);

  // The degraded alert's explain() chain reaches acoustic evidence: the
  // kHealthAlert record cites the last tone the sick mic actually heard.
  ASSERT_GE(r.first_alert_chain.size(), 2u);
  EXPECT_EQ(r.first_alert_chain.front().kind,
            obs::JournalKind::kToneEmitted);
  EXPECT_EQ(r.first_alert_chain.back().kind,
            obs::JournalKind::kHealthAlert);
  EXPECT_EQ(r.first_alert_chain.back().mic, kSickMic);
}

TEST(HealthRt, HealthJsonlByteIdenticalAcrossWorkerCounts) {
  const RunResult serial = run(1);
  const RunResult parallel = run(4);
  ASSERT_FALSE(serial.jsonl.empty());
  EXPECT_EQ(serial.jsonl, parallel.jsonl);
  // And the serial run reaches the same verdict as the parallel one.
  EXPECT_EQ(serial.states[kSickMic], obs::HealthState::kFailed);
}

}  // namespace
}  // namespace mdn
