// Unit tests for the deterministic ordered merge: watermark gating,
// canonical (seq, mic, watch) ordering, close semantics, sequence gaps
// (dropped blocks) and drain idempotence.
#include "rt/ordered_merge.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace mdn::rt {
namespace {

StreamEvent make_event(std::uint64_t seq, std::uint32_t mic,
                       std::uint32_t watch) {
  StreamEvent e;
  e.seq = seq;
  e.mic = mic;
  e.watch = watch;
  e.time_s = static_cast<double>(seq) * 0.05;
  e.frequency_hz = 800.0 + 20.0 * watch;
  e.amplitude = 0.1;
  return e;
}

TEST(OrderedMerge, NothingReleasedBeforeEverySourceAdvances) {
  OrderedMerge merge;
  const auto a = merge.add_source();
  const auto b = merge.add_source();
  merge.push(make_event(0, a, 0));
  merge.advance(a, 1);
  std::vector<StreamEvent> out;
  // Source b has not reported anything: its block 0 may still produce an
  // earlier-keyed event, so nothing is releasable.
  EXPECT_EQ(merge.drain_ready(out), 0u);
  EXPECT_TRUE(out.empty());
  merge.advance(b, 1);
  EXPECT_EQ(merge.drain_ready(out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].mic, a);
}

TEST(OrderedMerge, ReleasesInCanonicalSeqMicWatchOrder) {
  OrderedMerge merge;
  const auto a = merge.add_source();
  const auto b = merge.add_source();
  // Push deliberately scrambled.
  merge.push(make_event(1, b, 0));
  merge.push(make_event(0, b, 1));
  merge.push(make_event(0, a, 0));
  merge.push(make_event(1, a, 2));
  merge.push(make_event(0, b, 0));
  merge.advance(a, 2);
  merge.advance(b, 2);
  std::vector<StreamEvent> out;
  EXPECT_EQ(merge.drain_ready(out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_TRUE(stream_event_before(out[i - 1], out[i]));
  }
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[0].mic, a);
  EXPECT_EQ(out[4].seq, 1u);
  EXPECT_EQ(out[4].mic, b);
}

TEST(OrderedMerge, WatermarkIsMinOverOpenSources) {
  OrderedMerge merge;
  const auto a = merge.add_source();
  const auto b = merge.add_source();
  EXPECT_EQ(merge.watermark(), 0u);
  merge.advance(a, 7);
  EXPECT_EQ(merge.watermark(), 0u);
  merge.advance(b, 3);
  EXPECT_EQ(merge.watermark(), 3u);
  merge.close(b);
  EXPECT_EQ(merge.watermark(), 7u);
  merge.close(a);
  EXPECT_EQ(merge.watermark(), UINT64_MAX);
}

TEST(OrderedMerge, AdvanceIsMonotonic) {
  OrderedMerge merge;
  const auto a = merge.add_source();
  merge.advance(a, 5);
  merge.advance(a, 2);  // ignored
  EXPECT_EQ(merge.watermark(), 5u);
}

TEST(OrderedMerge, SequenceGapsFromDropsDoNotStall) {
  OrderedMerge merge;
  const auto a = merge.add_source();
  merge.push(make_event(0, a, 0));
  merge.push(make_event(5, a, 0));
  // Blocks 1..4 were dropped by backpressure; the worker advances
  // straight from 1 to 6.
  merge.advance(a, 1);
  std::vector<StreamEvent> out;
  EXPECT_EQ(merge.drain_ready(out), 1u);
  merge.advance(a, 6);
  EXPECT_EQ(merge.drain_ready(out), 1u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].seq, 5u);
}

TEST(OrderedMerge, CloseReleasesRemainingEvents) {
  OrderedMerge merge;
  const auto a = merge.add_source();
  const auto b = merge.add_source();
  merge.push(make_event(3, a, 0));
  merge.advance(a, 4);
  std::vector<StreamEvent> out;
  EXPECT_EQ(merge.drain_ready(out), 0u);  // b gates at 0
  merge.close(b);
  merge.close(a);
  EXPECT_EQ(merge.drain_ready(out), 1u);
  EXPECT_EQ(merge.pending(), 0u);
}

TEST(OrderedMerge, SuccessiveDrainsNeverDuplicateOrReorder) {
  OrderedMerge merge;
  const auto a = merge.add_source();
  std::vector<StreamEvent> out;
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    merge.push(make_event(seq, a, 0));
    merge.advance(a, seq + 1);
    merge.drain_ready(out);  // drain incrementally
  }
  ASSERT_EQ(out.size(), 50u);
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    EXPECT_EQ(out[seq].seq, seq);
  }
}

}  // namespace
}  // namespace mdn::rt
