// StreamRuntime behaviour: serial equivalence across worker counts,
// drop-policy semantics, backpressure accounting, lifecycle guards and
// incremental delivery.  The equivalence tests are also part of the CI
// ThreadSanitizer workload.
#include "rt/stream_runtime.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace mdn::rt {
namespace {

constexpr double kSampleRate = 48000.0;
constexpr std::size_t kBlockSize = 2400;  // 50 ms at 48 kHz
constexpr double kHopS = 0.05;

std::vector<double> tone_block(double freq, double amplitude = 0.2) {
  std::vector<double> v(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    v[i] = amplitude * std::sin(2.0 * std::numbers::pi * freq *
                                static_cast<double>(i) / kSampleRate);
  }
  return v;
}

std::vector<double> silent_block() {
  return std::vector<double>(kBlockSize, 0.0);
}

StreamRuntimeConfig base_config(std::size_t workers) {
  StreamRuntimeConfig cfg;
  cfg.workers = workers;
  cfg.ring_capacity = 64;
  cfg.detector.sample_rate = kSampleRate;
  cfg.detector.block_size = kBlockSize;
  cfg.watch_hz = {800.0, 820.0, 840.0, 860.0};
  return cfg;
}

/// The per-mic block schedule of a deterministic scenario: mic m plays
/// its own watch frequency during hops [2m, 2m+3), everyone is silent
/// otherwise, and mic 0 additionally fires a late burst — so onsets land
/// on different mics at different and at equal hops.
std::vector<double> scenario_block(std::uint32_t mic, std::uint64_t hop,
                                   const std::vector<double>& watch) {
  const double freq = watch[mic % watch.size()];
  const bool on = (hop >= 2 * mic && hop < 2 * mic + 3) ||
                  (mic == 0 && hop >= 12 && hop < 14);
  return on ? tone_block(freq) : silent_block();
}

/// Single-threaded reference: identical detector, identical matching
/// arithmetic, blocks visited in canonical (hop, mic, watch) order.
std::vector<StreamEvent> serial_reference(const StreamRuntimeConfig& cfg,
                                          std::size_t mics,
                                          std::uint64_t hops) {
  const core::ToneDetector detector(cfg.detector);
  std::vector<std::vector<char>> active(
      mics, std::vector<char>(cfg.watch_hz.size(), 0));
  std::vector<StreamEvent> events;
  std::vector<core::DetectedTone> tones;
  for (std::uint64_t hop = 0; hop < hops; ++hop) {
    for (std::uint32_t mic = 0; mic < mics; ++mic) {
      const auto block = scenario_block(mic, hop, cfg.watch_hz);
      detector.detect_into(block, tones);
      for (std::size_t w = 0; w < cfg.watch_hz.size(); ++w) {
        double best_amp = 0.0;
        bool found = false;
        for (const auto& t : tones) {
          if (std::abs(t.frequency_hz - cfg.watch_hz[w]) <=
              detector.config().match_tolerance_hz) {
            found = true;
            best_amp = std::max(best_amp, t.amplitude);
          }
        }
        if (found && active[mic][w] == 0) {
          events.push_back({hop, mic, static_cast<std::uint32_t>(w),
                            static_cast<double>(hop) * kHopS, cfg.watch_hz[w],
                            best_amp});
        }
        active[mic][w] = found ? 1 : 0;
      }
    }
  }
  return events;
}

std::vector<StreamEvent> run_runtime(const StreamRuntimeConfig& cfg,
                                     std::size_t mics, std::uint64_t hops) {
  StreamRuntime runtime(cfg);
  for (std::size_t m = 0; m < mics; ++m) {
    runtime.add_mic("mic-" + std::to_string(m));
  }
  runtime.start();
  for (std::uint64_t hop = 0; hop < hops; ++hop) {
    for (std::uint32_t mic = 0; mic < mics; ++mic) {
      const auto block = scenario_block(mic, hop, cfg.watch_hz);
      runtime.submit_block(mic, static_cast<double>(hop) * kHopS, block);
    }
  }
  runtime.finish();
  return runtime.events();
}

TEST(StreamRuntime, MergedStreamMatchesSerialAtEveryWorkerCount) {
  const std::size_t mics = 4;
  const std::uint64_t hops = 16;
  const auto reference = serial_reference(base_config(1), mics, hops);
  ASSERT_FALSE(reference.empty());
  for (std::size_t workers : {1u, 2u, 4u, 7u}) {
    const auto events = run_runtime(base_config(workers), mics, hops);
    ASSERT_EQ(events.size(), reference.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_TRUE(events[i] == reference[i])
          << "workers=" << workers << " event " << i;
    }
  }
}

TEST(StreamRuntime, RepeatedRunsAreBitIdentical) {
  const auto a = run_runtime(base_config(4), 3, 12);
  const auto b = run_runtime(base_config(4), 3, 12);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}

TEST(StreamRuntime, BatchWidthNeverChangesTheMergedStream) {
  // batch_max=1 is the one-block-one-FFT path; wider settings fuse ready
  // blocks into one SoA FFT.  All must match the serial reference
  // exactly, at several worker counts.
  const std::size_t mics = 4;
  const std::uint64_t hops = 16;
  const auto reference = serial_reference(base_config(1), mics, hops);
  ASSERT_FALSE(reference.empty());
  for (std::size_t workers : {1u, 2u, 4u, 7u}) {
    for (std::size_t batch : {1u, 2u, 4u}) {
      auto cfg = base_config(workers);
      cfg.batch_max = batch;
      const auto events = run_runtime(cfg, mics, hops);
      ASSERT_EQ(events.size(), reference.size())
          << "workers=" << workers << " batch_max=" << batch;
      for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_TRUE(events[i] == reference[i])
            << "workers=" << workers << " batch_max=" << batch << " event "
            << i;
      }
    }
  }
}

TEST(StreamRuntime, BatchMaxIsClampedToTheDetectorLimit) {
  auto cfg = base_config(1);
  cfg.batch_max = 100;
  const StreamRuntime wide(cfg);
  EXPECT_EQ(wide.config().batch_max, core::ToneDetector::kMaxDetectBatch);
  cfg.batch_max = 0;
  const StreamRuntime narrow(cfg);
  EXPECT_EQ(narrow.config().batch_max, 1u);
}

TEST(StreamRuntime, BlockPolicyLosesNothingUnderTinyRings) {
  auto cfg = base_config(2);
  cfg.ring_capacity = 2;
  cfg.drop_policy = DropPolicy::kBlock;
  const std::size_t mics = 4;
  const std::uint64_t hops = 16;
  const auto reference = serial_reference(cfg, mics, hops);
  const auto events = run_runtime(cfg, mics, hops);
  const auto stats_equivalent = events.size() == reference.size();
  EXPECT_TRUE(stats_equivalent);
  for (std::size_t i = 0; i < std::min(events.size(), reference.size());
       ++i) {
    EXPECT_TRUE(events[i] == reference[i]) << "event " << i;
  }
}

TEST(StreamRuntime, DropNewestKeepsTheEarliestBlocks) {
  auto cfg = base_config(1);
  cfg.ring_capacity = 2;
  cfg.drop_policy = DropPolicy::kDropNewest;
  StreamRuntime runtime(cfg);
  const auto mic = runtime.add_mic("m");
  // Workers not started yet: the ring fills deterministically.  Blocks
  // 0..1 carry a tone, the rest are silent.
  EXPECT_TRUE(runtime.submit_block(mic, 0.00, tone_block(800.0)));
  EXPECT_TRUE(runtime.submit_block(mic, 0.05, tone_block(800.0)));
  EXPECT_FALSE(runtime.submit_block(mic, 0.10, silent_block()));
  EXPECT_FALSE(runtime.submit_block(mic, 0.15, silent_block()));
  runtime.finish();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.processed, 2u);
  EXPECT_EQ(stats.dropped_newest, 2u);
  EXPECT_EQ(stats.dropped_oldest, 0u);
  // The surviving pair of tone blocks yields exactly one onset at t=0.
  ASSERT_EQ(runtime.events().size(), 1u);
  EXPECT_EQ(runtime.events()[0].seq, 0u);
  EXPECT_DOUBLE_EQ(runtime.events()[0].time_s, 0.0);
}

TEST(StreamRuntime, DropOldestKeepsTheLatestBlocks) {
  auto cfg = base_config(1);
  cfg.ring_capacity = 2;
  cfg.drop_policy = DropPolicy::kDropOldest;
  StreamRuntime runtime(cfg);
  const auto mic = runtime.add_mic("m");
  // Tone first, then silence: DropOldest must shed the tone blocks and
  // keep the two most recent silent ones.
  EXPECT_TRUE(runtime.submit_block(mic, 0.00, tone_block(800.0)));
  EXPECT_TRUE(runtime.submit_block(mic, 0.05, tone_block(800.0)));
  EXPECT_TRUE(runtime.submit_block(mic, 0.10, silent_block()));
  EXPECT_TRUE(runtime.submit_block(mic, 0.15, silent_block()));
  runtime.finish();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.processed, 2u);
  EXPECT_EQ(stats.dropped_oldest, 2u);
  EXPECT_EQ(stats.dropped_newest, 0u);
  EXPECT_TRUE(runtime.events().empty());  // only silence survived
}

TEST(StreamRuntime, HandlerSeesEventsInCanonicalOrder) {
  auto cfg = base_config(3);
  std::vector<StreamEvent> seen;
  StreamRuntime runtime(cfg);
  for (int m = 0; m < 3; ++m) runtime.add_mic("m" + std::to_string(m));
  runtime.on_event([&seen](const StreamEvent& e) { seen.push_back(e); });
  runtime.start();
  for (std::uint64_t hop = 0; hop < 10; ++hop) {
    for (std::uint32_t mic = 0; mic < 3; ++mic) {
      runtime.submit_block(mic, static_cast<double>(hop) * kHopS,
                           scenario_block(mic, hop, cfg.watch_hz));
    }
    runtime.poll();  // incremental delivery is allowed mid-stream
  }
  runtime.finish();
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.size(), runtime.events().size());
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_TRUE(stream_event_before(seen[i - 1], seen[i]));
  }
  EXPECT_EQ(runtime.stats().delivered, seen.size());
}

TEST(StreamRuntime, SubmitAfterFinishThrows) {
  StreamRuntime runtime(base_config(1));
  const auto mic = runtime.add_mic("m");
  runtime.start();
  runtime.finish();
  EXPECT_THROW(runtime.submit_block(mic, 0.0, silent_block()),
               std::logic_error);
}

TEST(StreamRuntime, AddMicAfterStartThrows) {
  StreamRuntime runtime(base_config(1));
  runtime.add_mic("m");
  runtime.start();
  EXPECT_THROW(runtime.add_mic("late"), std::logic_error);
  runtime.finish();
}

TEST(StreamRuntime, FinishIsIdempotentAndStartsLazyWorkers) {
  auto cfg = base_config(2);
  cfg.drop_policy = DropPolicy::kDropNewest;
  StreamRuntime runtime(cfg);
  const auto mic = runtime.add_mic("m");
  // Submitted before start(): finish() must still process it.
  runtime.submit_block(mic, 0.0, tone_block(800.0));
  runtime.finish();
  runtime.finish();
  EXPECT_EQ(runtime.stats().processed, 1u);
  EXPECT_EQ(runtime.events().size(), 1u);
}

TEST(StreamRuntime, MicNamesRoundTrip) {
  StreamRuntime runtime(base_config(1));
  const auto a = runtime.add_mic("alpha");
  const auto b = runtime.add_mic("beta");
  EXPECT_EQ(runtime.mic_count(), 2u);
  EXPECT_EQ(runtime.mic_name(a), "alpha");
  EXPECT_EQ(runtime.mic_name(b), "beta");
}

}  // namespace
}  // namespace mdn::rt
