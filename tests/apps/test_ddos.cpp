#include "mdn/ddos.h"

#include <gtest/gtest.h>

#include <set>

#include "app_fixture.h"

namespace mdn::core {
namespace {

using test::SingleSwitchApp;

class SuperspreaderTest : public SingleSwitchApp {
 protected:
  SuperspreaderConfig make_config() {
    SuperspreaderConfig cfg;
    cfg.k = 10;
    cfg.window_s = 5.0;
    cfg.tone_duration_s = 0.04;
    return cfg;
  }

  void setup(std::size_t bins = 40) {
    init_mdn(60 * net::kMillisecond);
    install_forwarding();
    device_ = plan_.add_device("s1", bins);
    reporter_ = std::make_unique<SuperspreaderReporter>(
        *sw_, *emitter_, plan_, device_, make_config());
    detector_ = std::make_unique<SuperspreaderDetector>(
        *controller_, plan_, device_, make_config());
    controller_->start();
  }

  // h1 contacts `count` distinct destinations, one every `gap_s`.
  void contact_destinations(int count, double gap_s) {
    for (int i = 0; i < count; ++i) {
      net_.loop().schedule_at(net::from_seconds(0.1 + i * gap_s),
                              [this, i] {
                                net::Packet p;
                                p.flow = flow(80);
                                p.flow.dst_ip =
                                    net::make_ipv4(10, 1, 0,
                                                   static_cast<std::uint8_t>(
                                                       i + 1));
                                h1_->send(p);
                              });
    }
  }

  DeviceId device_ = 0;
  std::unique_ptr<SuperspreaderReporter> reporter_;
  std::unique_ptr<SuperspreaderDetector> detector_;
};

TEST_F(SuperspreaderTest, AddressBinningDeterministic) {
  setup();
  const auto addr = net::make_ipv4(10, 1, 0, 7);
  EXPECT_EQ(reporter_->bin_for_address(addr),
            reporter_->bin_for_address(addr));
  EXPECT_DOUBLE_EQ(
      reporter_->frequency_for_address(addr),
      plan_.frequency(device_, reporter_->bin_for_address(addr)));
}

TEST_F(SuperspreaderTest, AdjacentAddressesSpread) {
  setup();
  std::set<std::size_t> bins;
  for (std::uint8_t d = 1; d < 60; ++d) {
    bins.insert(reporter_->bin_for_address(net::make_ipv4(10, 1, 0, d)));
  }
  EXPECT_GT(bins.size(), 25u);
}

TEST_F(SuperspreaderTest, SpreaderContactingManyDestinationsFlagged) {
  setup();
  contact_destinations(30, 0.1);  // 30 destinations over 3 s
  run_for(4.5);
  ASSERT_FALSE(detector_->alerts().empty());
  EXPECT_GT(detector_->alerts().front().distinct_bins, 10u);
}

TEST_F(SuperspreaderTest, FewDestinationsNotFlagged) {
  setup();
  contact_destinations(5, 0.1);
  run_for(2.0);
  EXPECT_TRUE(detector_->alerts().empty());
}

TEST_F(SuperspreaderTest, RepeatContactsToSameDestinationNotFlagged) {
  setup();
  // 40 packets but only 3 distinct destinations.
  for (int i = 0; i < 40; ++i) {
    net_.loop().schedule_at(
        net::from_seconds(0.1 + i * 0.08), [this, i] {
          net::Packet p;
          p.flow = flow(80);
          p.flow.dst_ip = net::make_ipv4(10, 1, 0,
                                         static_cast<std::uint8_t>(i % 3 + 1));
          h1_->send(p);
        });
  }
  run_for(4.0);
  EXPECT_TRUE(detector_->alerts().empty());
}

TEST_F(SuperspreaderTest, SlowSpreaderOutsideWindowEvades) {
  SuperspreaderConfig cfg = make_config();
  cfg.window_s = 1.0;  // tight window
  init_mdn(60 * net::kMillisecond);
  install_forwarding();
  device_ = plan_.add_device("s1", 40);
  reporter_ = std::make_unique<SuperspreaderReporter>(*sw_, *emitter_,
                                                      plan_, device_, cfg);
  detector_ = std::make_unique<SuperspreaderDetector>(*controller_, plan_,
                                                      device_, cfg);
  controller_->start();
  contact_destinations(15, 0.5);  // ~2 destinations per 1 s window
  run_for(9.0);
  EXPECT_TRUE(detector_->alerts().empty());
}

TEST_F(SuperspreaderTest, SrcKeyedModeDetectsDdosVictim) {
  // Mirror image: tones keyed by *source* bins at the victim's switch.
  SuperspreaderConfig cfg = make_config();
  cfg.key_by = SuperspreaderConfig::KeyBy::kSrcAddress;
  init_mdn(60 * net::kMillisecond);
  install_forwarding();
  device_ = plan_.add_device("s1", 40);
  reporter_ = std::make_unique<SuperspreaderReporter>(*sw_, *emitter_,
                                                      plan_, device_, cfg);
  detector_ = std::make_unique<SuperspreaderDetector>(*controller_, plan_,
                                                      device_, cfg);
  controller_->start();

  // 25 distinct sources hit h2 (a DDoS victim pattern).
  for (int i = 0; i < 25; ++i) {
    net_.loop().schedule_at(net::from_seconds(0.1 + i * 0.1), [this, i] {
      net::Packet p;
      p.flow = flow(80);
      p.flow.src_ip = net::make_ipv4(172, 16, 0,
                                     static_cast<std::uint8_t>(i + 1));
      h1_->send(p);
    });
  }
  run_for(4.0);
  ASSERT_FALSE(detector_->alerts().empty());
  EXPECT_GT(detector_->alerts().front().distinct_bins, 10u);
}

}  // namespace
}  // namespace mdn::core
