// Testbed fidelity (§3): "Two major limitations of the Zodiac FX
// switches forced us to implement some of our use cases on a virtual
// network testbed using Mininet: (i) the RAM is limited to 120KB and
// (ii) multi-packet queues are not supported (only a single packet can
// be sent at once)."
//
// We reproduce that engineering reality: with single-packet queues the
// queue-band application of §6 physically cannot reach the congested
// band — exactly why the paper ran it on the virtual testbed.
#include <gtest/gtest.h>

#include "audio/audio.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

namespace mdn {
namespace {

constexpr double kSampleRate = 48000.0;

struct QueueBandOutcome {
  std::size_t max_band = 0;
  std::size_t max_backlog = 0;
  std::uint64_t drops = 0;
};

// Runs the §6 queue-band scenario on a switch whose egress queue holds
// `queue_capacity` packets.
QueueBandOutcome run_with_queue(std::size_t queue_capacity) {
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  core::FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 100.0});

  auto& sw = net.add_switch("s1");
  auto& h1 = net.add_host("h1", net::make_ipv4(10, 0, 0, 1));
  auto& h2 = net.add_host("h2", net::make_ipv4(10, 0, 0, 2));
  net::LinkSpec fast;
  fast.rate_bps = 1e9;
  net::LinkSpec slow;
  slow.rate_bps = 8e6;
  slow.queue_capacity = queue_capacity;
  net.connect(h1, sw, fast);
  const std::size_t out = net.connect(h2, sw, slow);
  net::FlowEntry fwd;
  fwd.priority = 1;
  fwd.actions = {net::Action::output(out)};
  sw.flow_table().add(fwd, 0);

  const auto spk = channel.add_source("s1", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk);
  mp::MpEmitter emitter(net.loop(), bridge, 0);
  const auto dev = plan.add_device("s1", 3);
  core::QueueToneConfig qcfg;
  qcfg.port_index = out;
  core::QueueToneReporter reporter(sw, emitter, plan, dev, qcfg);
  reporter.start();

  net::SourceConfig scfg;
  scfg.flow = {h1.ip(), h2.ip(), 40000, 80, net::IpProto::kTcp};
  scfg.stop = net::from_seconds(2.0);
  net::CbrSource burst(h1, scfg, 1500.0);  // 1.5x the bottleneck
  burst.start();

  net.loop().schedule_at(net::from_seconds(2.5),
                         [&] { reporter.stop(); });
  net.loop().run();

  QueueBandOutcome o;
  for (const auto& s : reporter.samples()) {
    o.max_band = std::max(o.max_band, s.band);
    o.max_backlog = std::max(o.max_backlog, s.backlog);
  }
  o.drops = sw.port(out).drops();
  return o;
}

TEST(ZodiacProfile, SinglePacketQueueCannotSignalCongestion) {
  // Zodiac FX: "only a single packet can be sent at once".
  const auto zodiac = run_with_queue(1);
  // Backlog never exceeds 2 (1 queued + 1 serialising): always band 0.
  EXPECT_LE(zodiac.max_backlog, 2u);
  EXPECT_EQ(zodiac.max_band, 0u);
  // The overload shows up as drops instead of queueing.
  EXPECT_GT(zodiac.drops, 100u);
}

TEST(ZodiacProfile, VirtualSwitchReachesTheCongestedBand) {
  // The Mininet-style switch with a real queue: all three bands appear.
  const auto virt = run_with_queue(200);
  EXPECT_GT(virt.max_backlog, 75u);
  EXPECT_EQ(virt.max_band, 2u);
}

TEST(ZodiacProfile, MpMessageFitsTheZodiacRamBudget) {
  // The 120 KB RAM constraint is why MP messages are 16 fixed bytes; a
  // full day of one tone per second buffers in well under 2 MB even if
  // naively logged, and a single message is trivially stack-allocated.
  EXPECT_EQ(mp::kWireSize, 16u);
  const auto wire = mp::marshal(mp::MpMessage{});
  EXPECT_EQ(wire.size(), mp::kWireSize);
}

}  // namespace
}  // namespace mdn
