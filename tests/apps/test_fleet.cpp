// Fleet integration: acoustic rooms of switches driven by the workload
// engine, with the journal scoreboard attributing per-room (mic-scoped)
// precision/recall and the whole pipeline replaying deterministically.
#include "mdn/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "net/traffic_gen.h"
#include "obs/journal.h"
#include "obs/scoreboard.h"

namespace mdn::core {
namespace {

FleetConfig small_fleet() {
  FleetConfig cfg;
  cfg.rooms = 2;
  cfg.switches_per_room = 2;
  cfg.emitter_min_gap = 50 * net::kMillisecond;
  return cfg;
}

TEST(Fleet, TopologyInvariants) {
  net::EventLoop loop;
  Fleet fleet(loop, small_fleet());
  EXPECT_EQ(fleet.room_count(), 2u);
  EXPECT_EQ(fleet.switch_count(), 4u);
  EXPECT_EQ(fleet.room_of(0), 0u);
  EXPECT_EQ(fleet.room_of(1), 0u);
  EXPECT_EQ(fleet.room_of(2), 1u);
  EXPECT_EQ(fleet.room_of(3), 1u);
  // hh + ps bins per switch, summed over the fleet.
  EXPECT_EQ(fleet.watched_tone_count(), 4u * (16u + 16u));
  // Rooms reuse the same frequency plan layout, so the deduped union is
  // one room's worth of tones, sorted ascending.
  const auto hz = fleet.watch_hz();
  EXPECT_EQ(hz.size(), 2u * (16u + 16u));
  EXPECT_TRUE(std::is_sorted(hz.begin(), hz.end()));
  EXPECT_TRUE(std::adjacent_find(hz.begin(), hz.end()) == hz.end());
}

struct FleetRun {
  std::uint64_t digest = 0;
  std::uint64_t packets = 0;
  std::uint64_t onsets = 0;
  obs::Scoreboard::Cell mic0, mic1, grand;
  std::string board;
};

FleetRun run_small_fleet(double skew) {
  obs::Journal::global().enable(1u << 16);
  obs::Journal::global().clear();

  net::EventLoop loop;
  Fleet fleet(loop, small_fleet());

  net::TrafficGenConfig tcfg;
  tcfg.population.total_flows = 512;
  tcfg.population.zipf_skew = skew;
  tcfg.rate_pps = 2000.0;
  tcfg.churn_fpm = 600.0;
  tcfg.stop = net::from_seconds(1.5);
  tcfg.seed = 7;
  net::TrafficGen gen(loop, tcfg);
  for (std::size_t s = 0; s < fleet.switch_count(); ++s) {
    gen.add_target(fleet.switch_at(s));
  }

  fleet.start();
  gen.start();
  fleet.stop_at(net::from_seconds(1.65));
  loop.run();

  obs::ScoreboardConfig scfg;
  scfg.watch_hz = fleet.watch_hz();
  scfg.tolerance_hz = 10.0;
  scfg.mics = fleet.room_count();
  const auto board = obs::Scoreboard::build(obs::Journal::global(), scfg);

  FleetRun r;
  r.digest = gen.trace_digest();
  r.packets = gen.packets();
  r.onsets = fleet.onsets_heard();
  r.mic0 = board.totals(0);
  r.mic1 = board.totals(1);
  r.grand = board.grand_totals();
  r.board = board.render();
  return r;
}

TEST(Fleet, HearsTheWorkloadInEveryRoom) {
  const FleetRun r = run_small_fleet(1.26);
  EXPECT_EQ(r.packets, 3000u);
  EXPECT_GT(r.onsets, 0u);
  EXPECT_GT(r.mic0.detected, 0u) << "room 0 mic hears its switches";
  EXPECT_GT(r.mic1.detected, 0u) << "room 1 mic hears its switches";
  EXPECT_GT(r.grand.recall(), 0.2);
}

TEST(Fleet, ScoreboardIsMicScoped) {
  // Rooms reuse the same tone frequencies; without mic-scoped emissions
  // every room-0 tone would also count as a room-1 miss and recall would
  // collapse.  Scoped, each room's emitted count covers only its own
  // switches and the grand total is their sum.
  const FleetRun r = run_small_fleet(0.0);
  EXPECT_GT(r.mic0.emitted, 0u);
  EXPECT_GT(r.mic1.emitted, 0u);
  EXPECT_EQ(r.grand.emitted, r.mic0.emitted + r.mic1.emitted);
  EXPECT_EQ(r.grand.detected, r.mic0.detected + r.mic1.detected);
  // Both rooms carry real workload: neither side dominates entirely.
  EXPECT_GT(r.mic0.recall(), 0.2);
  EXPECT_GT(r.mic1.recall(), 0.2);
}

TEST(Fleet, ReplaysByteIdentically) {
  const FleetRun a = run_small_fleet(1.26);
  const FleetRun b = run_small_fleet(1.26);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.onsets, b.onsets);
  EXPECT_EQ(a.board, b.board) << "scoreboard render must be byte-identical";
}

}  // namespace
}  // namespace mdn::core
