#include "mdn/port_knocking.h"

#include <gtest/gtest.h>

#include <numeric>

#include "app_fixture.h"
#include "obs/latency.h"
#include "obs/scoreboard.h"

namespace mdn::core {
namespace {

using test::SingleSwitchApp;

class PortKnockingTest : public SingleSwitchApp {
 protected:
  PortKnockingConfig make_config() {
    PortKnockingConfig cfg;
    cfg.knock_ports = {7001, 7002, 7003};
    cfg.protected_port = 8080;
    cfg.open_out_port = out_port_;
    cfg.tone_duration_s = 0.1;
    return cfg;
  }

  std::unique_ptr<PortKnockingApp> make_app(PortKnockingConfig cfg) {
    device_ = plan_.add_device("s1", cfg.knock_ports.size());
    return std::make_unique<PortKnockingApp>(*sw_, *emitter_, *controller_,
                                             sdn_channel_, dpid_, plan_,
                                             device_, std::move(cfg));
  }

  void send_knock(std::uint16_t port, double at_s) {
    net_.loop().schedule_at(net::from_seconds(at_s), [this, port] {
      net::Packet p;
      p.flow = flow(port);
      p.size_bytes = 64;
      h1_->send(p);
    });
  }

  // Counts arrivals at h2 on the protected port only (knock packets are
  // ordinary forwarded traffic and also reach h2).
  void count_protected_rx() {
    h2_->set_rx_hook([this](const net::Packet& p) {
      if (p.flow.dst_port == 8080) ++protected_rx_;
    });
  }

  void send_data(double at_s, int count = 1) {
    net_.loop().schedule_at(net::from_seconds(at_s), [this, count] {
      for (int i = 0; i < count; ++i) {
        net::Packet p;
        p.flow = flow(8080);
        h1_->send(p);
      }
    });
  }

  DeviceId device_ = 0;
  int protected_rx_ = 0;
};

TEST_F(PortKnockingTest, CorrectSequenceOpensPort) {
  init_mdn(0);
  install_forwarding();
  count_protected_rx();
  auto app = make_app(make_config());
  controller_->start();

  // Data before knocking is dropped by the guard rule.
  send_data(0.1);
  send_knock(7001, 0.5);
  send_knock(7002, 1.0);
  send_knock(7003, 1.5);
  send_data(2.0, 3);
  run_for(3.0);

  EXPECT_TRUE(app->opened());
  EXPECT_GT(app->opened_at_s(), 1.5);
  EXPECT_LT(app->opened_at_s(), 2.0);
  EXPECT_EQ(app->knocks_heard(), 3u);
  EXPECT_EQ(protected_rx_, 3);  // only post-open data reaches port 8080
}

TEST_F(PortKnockingTest, WrongOrderDoesNotOpen) {
  init_mdn(0);
  install_forwarding();
  count_protected_rx();
  auto app = make_app(make_config());
  controller_->start();

  send_knock(7001, 0.5);
  send_knock(7003, 1.0);  // wrong
  send_knock(7002, 1.5);
  send_data(2.0, 2);
  run_for(3.0);

  EXPECT_FALSE(app->opened());
  EXPECT_EQ(protected_rx_, 0);
}

TEST_F(PortKnockingTest, PartialSequenceDoesNotOpen) {
  init_mdn(0);
  install_forwarding();
  count_protected_rx();
  auto app = make_app(make_config());
  controller_->start();
  send_knock(7001, 0.5);
  send_knock(7002, 1.0);
  send_data(1.5, 2);
  run_for(2.5);
  EXPECT_FALSE(app->opened());
  EXPECT_EQ(protected_rx_, 0);
}

TEST_F(PortKnockingTest, RetryAfterMistakeSucceeds) {
  init_mdn(0);
  install_forwarding();
  auto app = make_app(make_config());
  controller_->start();

  send_knock(7002, 0.3);  // wrong first knock
  send_knock(7001, 0.8);
  send_knock(7002, 1.3);
  send_knock(7003, 1.8);
  run_for(2.5);
  EXPECT_TRUE(app->opened());
}

TEST_F(PortKnockingTest, KnockTimeoutResetsProgress) {
  init_mdn(0);
  install_forwarding();
  auto cfg = make_config();
  cfg.knock_timeout = net::kSecond;
  auto app = make_app(cfg);
  controller_->start();

  send_knock(7001, 0.2);
  send_knock(7002, 0.5);
  send_knock(7003, 3.0);  // 2.5 s later: timed out
  run_for(4.0);
  EXPECT_FALSE(app->opened());
}

TEST_F(PortKnockingTest, OpenCallbackFiresOnce) {
  init_mdn(0);
  install_forwarding();
  auto app = make_app(make_config());
  int opens = 0;
  app->on_open([&] { ++opens; });
  controller_->start();

  send_knock(7001, 0.3);
  send_knock(7002, 0.6);
  send_knock(7003, 0.9);
  // Knock again after opening.
  send_knock(7001, 1.3);
  send_knock(7002, 1.6);
  send_knock(7003, 1.9);
  run_for(2.5);
  EXPECT_EQ(opens, 1);
}

TEST_F(PortKnockingTest, NonKnockTrafficMakesNoSound) {
  init_mdn(0);
  install_forwarding();
  auto app = make_app(make_config());
  controller_->start();
  // Plain traffic to an open port (not protected, not knock).
  net_.loop().schedule_at(net::from_seconds(0.2), [this] {
    net::Packet p;
    p.flow = flow(443);
    h1_->send(p);
  });
  run_for(1.0);
  EXPECT_EQ(bridge_->played(), 0u);
  EXPECT_EQ(app->knocks_heard(), 0u);
  EXPECT_EQ(h2_->rx_packets(), 1u);  // forwarded normally
}

TEST_F(PortKnockingTest, GuardRuleInstalledAtConstruction) {
  init_mdn(0);
  install_forwarding();
  auto app = make_app(make_config());
  // Drop rule (priority 100) + forwarding (priority 1).
  EXPECT_EQ(sw_->flow_table().size(), 2u);
  (void)app;
}

TEST_F(PortKnockingTest, JournalExplainsFlowModBackToKnockTones) {
  // The flight-recorder acceptance path: with the journal on, explain()
  // on the opening FlowMod must reconstruct the entire §4 chain —
  // 3 emitted tones -> 3 detections -> 3 FSM transitions -> 1 FlowMod.
  obs::Journal& journal = obs::Journal::global();
  journal.enable(4096);
  journal.clear();

  init_mdn(0);
  install_forwarding();
  auto app = make_app(make_config());
  controller_->start();
  send_knock(7001, 0.5);
  send_knock(7002, 1.0);
  send_knock(7003, 1.5);
  run_for(2.5);

  ASSERT_TRUE(app->opened());
  ASSERT_NE(app->flow_mod_action(), 0u);
  const auto chain = journal.explain(app->flow_mod_action());

  std::size_t emitted = 0, detected = 0, transitions = 0, mods = 0;
  for (const auto& r : chain) {
    switch (r.kind) {
      case obs::JournalKind::kToneEmitted: ++emitted; break;
      case obs::JournalKind::kToneDetected: ++detected; break;
      case obs::JournalKind::kFsmTransition: ++transitions; break;
      case obs::JournalKind::kFlowMod: ++mods; break;
      default: break;
    }
  }
  EXPECT_EQ(emitted, 3u);
  EXPECT_EQ(detected, 3u);
  EXPECT_EQ(transitions, 3u);
  EXPECT_EQ(mods, 1u);
  // Chain is time-ordered, root first, actuation last.
  EXPECT_EQ(chain.front().kind, obs::JournalKind::kToneEmitted);
  EXPECT_EQ(chain.back().kind, obs::JournalKind::kFlowMod);
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LE(chain[i - 1].sim_ns, chain[i].sim_ns);
  }

  // The same chain as text, for the dashboard's `explain` command.
  const std::string text =
      obs::explain_text(journal, app->flow_mod_action());
  EXPECT_NE(text.find("tone_emitted"), std::string::npos);
  EXPECT_NE(text.find("knock_fsm"), std::string::npos);
  EXPECT_NE(text.find("flow_add"), std::string::npos);

  // The scoreboard over the same run: a clean channel hears every knock.
  const obs::Scoreboard board = obs::Scoreboard::build(journal);
  EXPECT_DOUBLE_EQ(board.recall(0), 1.0);
  EXPECT_EQ(board.totals(0).detected, 3u);

  journal.disable();
  journal.clear();
}

TEST_F(PortKnockingTest, LatencyBreakdownAttributesTheKnockWaterfall) {
  // The attribution acceptance path: breakdown() on the §4 opening
  // FlowMod must split the end-to-end interval into at least four
  // distinct pipeline stages whose per-stage sums telescope exactly to
  // the chain's total, with the capture stage reproducing the
  // scoreboard's per-detection latency.
  obs::Journal& journal = obs::Journal::global();
  journal.enable(4096);
  journal.clear();

  init_mdn(0);
  install_forwarding();
  auto app = make_app(make_config());
  controller_->start();
  send_knock(7001, 0.5);
  send_knock(7002, 1.0);
  send_knock(7003, 1.5);
  run_for(2.5);
  ASSERT_TRUE(app->opened());
  ASSERT_NE(app->flow_mod_action(), 0u);

  obs::LatencyProfiler profiler(journal);
  const obs::Breakdown b = profiler.breakdown(app->flow_mod_action());
  ASSERT_FALSE(b.hops.empty());
  EXPECT_GE(b.distinct_stages(), 4u);
  // Telescoping: stage sums account for every nanosecond of the chain.
  const std::int64_t stage_sum =
      std::accumulate(b.stage_ns.begin(), b.stage_ns.end(),
                      static_cast<std::int64_t>(0));
  EXPECT_EQ(stage_sum, b.total_ns);
  EXPECT_GT(b.total_ns, 0);

  // capture + ring_wait of one knock = the scoreboard's end-to-end
  // detection latency (the detection stamps the block end, one hop
  // after the tone started; ring_wait is 0 in sim time).
  const obs::Scoreboard board = obs::Scoreboard::build(journal);
  const double capture_s =
      static_cast<double>(
          b.stage_ns[static_cast<std::size_t>(obs::LatencyStage::kCapture)] +
          b.stage_ns[static_cast<std::size_t>(
              obs::LatencyStage::kRingWait)]) /
      1e9 / 3.0;  // three knocks, each contributing one capture hop
  EXPECT_NEAR(capture_s, board.cell(0, 0).latency_quantile(0.5), 1e-9);

  // The profiled pass feeds the per-stage histograms and the exports.
  profiler.profile_action(app->flow_mod_action());
  EXPECT_EQ(profiler.actions_profiled(), 1u);
  EXPECT_NE(profiler.render().find("slowest stage:"), std::string::npos);
  EXPECT_NE(profiler.to_prometheus().find("stage=\"capture\""),
            std::string::npos);
  EXPECT_NE(b.render().find("capture"), std::string::npos);

  journal.disable();
  journal.clear();
}

TEST_F(PortKnockingTest, JournalDisabledCostsNothingAndRecordsNothing) {
  obs::Journal& journal = obs::Journal::global();
  ASSERT_FALSE(journal.enabled());
  init_mdn(0);
  install_forwarding();
  auto app = make_app(make_config());
  controller_->start();
  send_knock(7001, 0.3);
  send_knock(7002, 0.6);
  send_knock(7003, 0.9);
  run_for(1.5);
  EXPECT_TRUE(app->opened());
  EXPECT_EQ(app->flow_mod_action(), 0u);  // no journal, no record ids
  EXPECT_EQ(journal.size(), 0u);
}

TEST_F(PortKnockingTest, ValidationErrors) {
  init_mdn(0);
  auto cfg = make_config();
  cfg.knock_ports.clear();
  const auto dev = plan_.add_device("s1", 3);
  EXPECT_THROW(PortKnockingApp(*sw_, *emitter_, *controller_, sdn_channel_,
                               dpid_, plan_, dev, cfg),
               std::invalid_argument);

  // Too few plan symbols for the knock count.
  auto cfg2 = make_config();
  const auto small_dev = plan_.add_device("tiny", 1);
  EXPECT_THROW(PortKnockingApp(*sw_, *emitter_, *controller_, sdn_channel_,
                               dpid_, plan_, small_dev, cfg2),
               std::invalid_argument);
}

}  // namespace
}  // namespace mdn::core
