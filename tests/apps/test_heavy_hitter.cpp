#include "mdn/heavy_hitter.h"

#include <gtest/gtest.h>

#include "app_fixture.h"
#include "net/traffic.h"

namespace mdn::core {
namespace {

using test::SingleSwitchApp;

class HeavyHitterTest : public SingleSwitchApp {
 protected:
  HeavyHitterConfig make_config() {
    HeavyHitterConfig cfg;
    cfg.tone_duration_s = 0.03;
    cfg.window_s = 2.0;
    cfg.threshold = 8;
    return cfg;
  }

  // Switch tones are rate-policed to one per 100 ms: an elephant flow
  // produces ~10 onsets/s in its bin, mice produce sporadic ones.
  void setup(std::size_t bins = 16) {
    init_mdn(100 * net::kMillisecond);
    install_forwarding();
    device_ = plan_.add_device("s1", bins);
    reporter_ = std::make_unique<HeavyHitterReporter>(
        *sw_, *emitter_, plan_, device_, make_config());
    detector_ = std::make_unique<HeavyHitterDetector>(
        *controller_, plan_, device_, make_config());
    controller_->start();
  }

  DeviceId device_ = 0;
  std::unique_ptr<HeavyHitterReporter> reporter_;
  std::unique_ptr<HeavyHitterDetector> detector_;
};

TEST_F(HeavyHitterTest, BinMappingIsDeterministicHash) {
  setup();
  const auto f = flow(80);
  EXPECT_EQ(reporter_->bin_for(f),
            net::flow_hash(f) % reporter_->bin_count());
  EXPECT_DOUBLE_EQ(reporter_->frequency_for(f),
                   plan_.frequency(device_, reporter_->bin_for(f)));
}

TEST_F(HeavyHitterTest, ElephantFlowRaisesAlert) {
  setup();
  net::SourceConfig cfg;
  cfg.flow = flow(80);
  cfg.start = 100 * net::kMillisecond;
  cfg.stop = net::from_seconds(4.0);
  net::CbrSource elephant(*h1_, cfg, 200.0);  // far above tone police rate
  elephant.start();
  run_for(4.5);

  ASSERT_FALSE(detector_->alerts().empty());
  const auto& alert = detector_->alerts().front();
  EXPECT_EQ(alert.bin, reporter_->bin_for(flow(80)));
  EXPECT_GE(alert.count_in_window, make_config().threshold);
  EXPECT_LT(alert.time_s, 3.0);  // detected within ~2 windows
}

TEST_F(HeavyHitterTest, MiceAloneRaiseNoAlert) {
  setup();
  // Three light flows at 1 pps each: ~1 onset/s spread over bins.
  std::vector<std::unique_ptr<net::CbrSource>> mice;
  for (std::uint16_t port : {81, 82, 83}) {
    net::SourceConfig cfg;
    cfg.flow = flow(port, static_cast<std::uint16_t>(port + 1000));
    cfg.stop = net::from_seconds(4.0);
    mice.push_back(std::make_unique<net::CbrSource>(*h1_, cfg, 1.0));
    mice.back()->start();
  }
  run_for(4.5);
  EXPECT_TRUE(detector_->alerts().empty());
}

TEST_F(HeavyHitterTest, MixedWorkloadFlagsOnlyTheElephant) {
  setup();
  std::vector<net::FlowMixSource::WeightedFlow> flows;
  flows.push_back({flow(80), 20.0});
  for (std::uint16_t p = 81; p < 86; ++p) flows.push_back({flow(p), 1.0});
  net::FlowMixSource mix(*h1_, flows, 300.0, 0, net::from_seconds(4.0), 5);
  mix.start();
  run_for(4.5);

  ASSERT_FALSE(detector_->alerts().empty());
  const std::size_t elephant_bin = reporter_->bin_for(flow(80));
  for (const auto& alert : detector_->alerts()) {
    EXPECT_EQ(alert.bin, elephant_bin);
  }
}

TEST_F(HeavyHitterTest, TotalsCountPerBin) {
  setup();
  net::SourceConfig cfg;
  cfg.flow = flow(80);
  cfg.stop = net::from_seconds(2.0);
  net::CbrSource src(*h1_, cfg, 100.0);
  src.start();
  run_for(2.5);

  const auto& totals = detector_->totals();
  const std::size_t bin = reporter_->bin_for(flow(80));
  // ~10 policed tones/s for 2 s.
  EXPECT_GE(totals[bin], 10u);
  for (std::size_t b = 0; b < totals.size(); ++b) {
    if (b != bin) {
      EXPECT_EQ(totals[b], 0u) << "bin " << b;
    }
  }
}

TEST_F(HeavyHitterTest, AlertHandlerInvoked) {
  setup();
  int alerts = 0;
  detector_->on_alert([&](const HeavyHitterDetector::Alert&) { ++alerts; });
  net::SourceConfig cfg;
  cfg.flow = flow(80);
  cfg.stop = net::from_seconds(3.0);
  net::CbrSource src(*h1_, cfg, 200.0);
  src.start();
  run_for(3.5);
  EXPECT_GE(alerts, 1);
}

TEST_F(HeavyHitterTest, WindowExpiresOldOnsets) {
  setup();
  // Burst then silence: the window count must decay to zero.
  net::SourceConfig cfg;
  cfg.flow = flow(80);
  cfg.stop = net::from_seconds(1.0);
  net::CbrSource src(*h1_, cfg, 200.0);
  src.start();
  run_for(6.0);

  const std::size_t bin = reporter_->bin_for(flow(80));
  EXPECT_EQ(detector_->window_count(bin),
            detector_->window_count(bin));  // accessor stable
  // All onsets happened before t=1.2; window is 2 s; by t=6 nothing new
  // arrived, so a query "now" would be empty — we check indirectly: no
  // alert fires after the burst's own alerts.
  for (const auto& alert : detector_->alerts()) {
    EXPECT_LT(alert.time_s, 1.5);
  }
}

TEST_F(HeavyHitterTest, RatePolicingBoundsToneRate) {
  setup();
  net::SourceConfig cfg;
  cfg.flow = flow(80);
  cfg.stop = net::from_seconds(2.0);
  net::CbrSource src(*h1_, cfg, 1000.0);  // 2000 packets
  src.start();
  run_for(2.5);
  // 100 ms police -> at most ~21 tones despite 2000 packets.
  EXPECT_LE(bridge_->played(), 22u);
  EXPECT_GT(emitter_->suppressed(), 1500u);
}

}  // namespace
}  // namespace mdn::core
