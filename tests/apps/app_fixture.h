// Shared scaffolding for application tests: a one-switch network with a
// speaker-equipped switch, an acoustic channel and a listening MDN
// controller — the Fig 1 testbed in miniature.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"
#include "sdn/sdn.h"

namespace mdn::test {

constexpr double kSampleRate = 48000.0;

class SingleSwitchApp : public ::testing::Test {
 protected:
  SingleSwitchApp()
      : channel_(kSampleRate),
        plan_({.base_hz = 500.0, .spacing_hz = 20.0}),
        sdn_channel_(net_.loop(), net::kMillisecond) {
    sw_ = &net_.add_switch("s1");
    h1_ = &net_.add_host("h1", net::make_ipv4(10, 0, 0, 1));
    h2_ = &net_.add_host("h2", net::make_ipv4(10, 0, 0, 2));
    net::LinkSpec fast;
    fast.rate_bps = 1e9;
    in_port_ = net_.connect(*h1_, *sw_, fast);
    out_port_ = net_.connect(*h2_, *sw_, fast);
    dpid_ = sdn_channel_.attach(*sw_, null_controller_);

    speaker_ = channel_.add_source("s1-speaker", 0.5);
    bridge_ = std::make_unique<mp::PiSpeakerBridge>(net_.loop(), channel_,
                                                    speaker_, 0);
  }

  // Creates the emitter with the given rate police and the controller.
  void init_mdn(net::SimTime emitter_gap,
                core::MdnController::Config cfg = {}) {
    emitter_ = std::make_unique<mp::MpEmitter>(net_.loop(), *bridge_,
                                               emitter_gap);
    cfg.detector.sample_rate = kSampleRate;
    controller_ =
        std::make_unique<core::MdnController>(net_.loop(), channel_, cfg);
  }

  // Installs a baseline forward-everything rule h1 -> h2.
  void install_forwarding() {
    net::FlowEntry e;
    e.priority = 1;
    e.actions = {net::Action::output(out_port_)};
    sw_->flow_table().add(e, net_.loop().now());
  }

  net::FlowKey flow(std::uint16_t dport = 80,
                    std::uint16_t sport = 40000) const {
    return {h1_->ip(), h2_->ip(), sport, dport, net::IpProto::kTcp};
  }

  void run_for(double seconds) {
    net_.loop().schedule_at(net::from_seconds(seconds),
                            [this] { controller_->stop(); });
    net_.loop().run();
  }

  sdn::Controller null_controller_;
  net::Network net_;
  audio::AcousticChannel channel_;
  core::FrequencyPlan plan_;
  sdn::ControlChannel sdn_channel_;
  net::Switch* sw_ = nullptr;
  net::Host* h1_ = nullptr;
  net::Host* h2_ = nullptr;
  std::size_t in_port_ = 0;
  std::size_t out_port_ = 0;
  sdn::DatapathId dpid_ = 0;
  audio::SourceId speaker_ = 0;
  std::unique_ptr<mp::PiSpeakerBridge> bridge_;
  std::unique_ptr<mp::MpEmitter> emitter_;
  std::unique_ptr<core::MdnController> controller_;
};

}  // namespace mdn::test
