#include "mdn/traffic_engineering.h"

#include <gtest/gtest.h>

#include <set>

#include "app_fixture.h"
#include "net/traffic.h"

namespace mdn::core {
namespace {

constexpr double kSampleRate = test::kSampleRate;

// Unit-level checks of the band mapping use the plain fixture.
class QueueBandTest : public test::SingleSwitchApp {};

TEST_F(QueueBandTest, BandThresholdsMatchPaper) {
  init_mdn(0);
  const auto dev = plan_.add_device("s1", 3);
  QueueToneConfig cfg;
  cfg.port_index = out_port_;
  QueueToneReporter reporter(*sw_, *emitter_, plan_, dev, cfg);
  EXPECT_EQ(reporter.band_for(0), 0u);
  EXPECT_EQ(reporter.band_for(24), 0u);
  EXPECT_EQ(reporter.band_for(25), 1u);
  EXPECT_EQ(reporter.band_for(75), 1u);
  EXPECT_EQ(reporter.band_for(76), 2u);
  EXPECT_EQ(reporter.band_for(10000), 2u);
}

TEST_F(QueueBandTest, BandFrequenciesFollowPlan) {
  init_mdn(0);
  const auto dev = plan_.add_device("s1", 3);
  QueueToneConfig cfg;
  cfg.port_index = out_port_;
  QueueToneReporter reporter(*sw_, *emitter_, plan_, dev, cfg);
  for (std::size_t band = 0; band < 3; ++band) {
    EXPECT_DOUBLE_EQ(reporter.frequency_for_band(band),
                     plan_.frequency(dev, band));
  }
}

TEST_F(QueueBandTest, ConfigValidation) {
  init_mdn(0);
  const auto dev3 = plan_.add_device("ok", 3);
  const auto dev2 = plan_.add_device("small", 2);
  QueueToneConfig bad_thresholds;
  bad_thresholds.low_threshold = 80;
  bad_thresholds.high_threshold = 20;
  EXPECT_THROW(
      QueueToneReporter(*sw_, *emitter_, plan_, dev3, bad_thresholds),
      std::invalid_argument);
  EXPECT_THROW(QueueToneReporter(*sw_, *emitter_, plan_, dev2, {}),
               std::invalid_argument);
}

TEST_F(QueueBandTest, ReporterSamplesEvery300ms) {
  init_mdn(0);
  const auto dev = plan_.add_device("s1", 3);
  QueueToneConfig cfg;
  cfg.port_index = out_port_;
  QueueToneReporter reporter(*sw_, *emitter_, plan_, dev, cfg);
  reporter.start();
  net_.loop().run_until(net::from_seconds(3.05));
  reporter.stop();
  EXPECT_EQ(reporter.samples().size(), 10u);  // 0.3 .. 3.0
  EXPECT_NEAR(reporter.samples()[1].time_s -
                  reporter.samples()[0].time_s,
              0.3, 1e-9);
  EXPECT_EQ(bridge_->played(), 10u);
}

// ------------------------------------------------------------------
// Full load-balancing scenario on the rhombus (§6, Fig 5a-b).
class LoadBalancerTest : public ::testing::Test {
 protected:
  LoadBalancerTest()
      : channel_(kSampleRate),
        plan_({.base_hz = 500.0, .spacing_hz = 100.0}),
        sdn_channel_(net_.loop(), net::kMillisecond) {
    net::LinkSpec slow;
    slow.rate_bps = 8e6;  // 1 ms per 1000 B packet -> 1000 pps capacity
    slow.queue_capacity = 150;
    topo_ = net::build_rhombus(net_, slow);

    // Initial single-path rule through the upper branch.
    net::FlowEntry single;
    single.priority = 10;
    single.actions = {net::Action::output(topo_.entry_upper_port)};
    topo_.entry->flow_table().add(single, 0);

    dpid_ = sdn_channel_.attach(*topo_.entry, null_controller_);
    speaker_ = channel_.add_source("s1-speaker", 0.5);
    bridge_ = std::make_unique<mp::PiSpeakerBridge>(net_.loop(), channel_,
                                                    speaker_, 0);
    emitter_ = std::make_unique<mp::MpEmitter>(net_.loop(), *bridge_, 0);

    MdnController::Config cfg;
    cfg.detector.sample_rate = kSampleRate;
    controller_ =
        std::make_unique<core::MdnController>(net_.loop(), channel_, cfg);

    device_ = plan_.add_device("s1", 3);
    QueueToneConfig qcfg;
    qcfg.port_index = topo_.entry_upper_port;
    reporter_ = std::make_unique<QueueToneReporter>(*topo_.entry, *emitter_,
                                                    plan_, device_, qcfg);
    LoadBalancerConfig lbcfg;
    lbcfg.split_ports = {topo_.entry_upper_port, topo_.entry_lower_port};
    lbcfg.flow_mod_priority = 50;
    balancer_ = std::make_unique<LoadBalancerApp>(
        *controller_, sdn_channel_, dpid_, plan_, device_, lbcfg);
  }

  void run_scenario(double seconds, double end_pps) {
    reporter_->start();
    controller_->start();
    net::SourceConfig cfg;
    cfg.flow = {topo_.src->ip(), topo_.dst->ip(), 40000, 80,
                net::IpProto::kTcp};
    cfg.start = 0;
    cfg.stop = net::from_seconds(seconds);
    net::RampSource ramp(*topo_.src, cfg, 100.0, end_pps);
    ramp.start();
    net_.loop().schedule_at(net::from_seconds(seconds), [this] {
      controller_->stop();
      reporter_->stop();
    });
    net_.loop().run();
  }

  sdn::Controller null_controller_;
  net::Network net_;
  audio::AcousticChannel channel_;
  core::FrequencyPlan plan_;
  sdn::ControlChannel sdn_channel_;
  net::RhombusTopology topo_;
  sdn::DatapathId dpid_ = 0;
  audio::SourceId speaker_ = 0;
  DeviceId device_ = 0;
  std::unique_ptr<mp::PiSpeakerBridge> bridge_;
  std::unique_ptr<mp::MpEmitter> emitter_;
  std::unique_ptr<core::MdnController> controller_;
  std::unique_ptr<QueueToneReporter> reporter_;
  std::unique_ptr<LoadBalancerApp> balancer_;
};

TEST_F(LoadBalancerTest, CongestionToneTriggersSplit) {
  run_scenario(6.0, 1800.0);

  ASSERT_TRUE(balancer_->balanced());
  EXPECT_GT(balancer_->balanced_at_s(), 0.3);
  EXPECT_LT(balancer_->balanced_at_s(), 6.0);

  // Both branches carried traffic after the split.
  EXPECT_GT(topo_.lower->forwarded(), 100u);
  EXPECT_GT(topo_.upper->forwarded(), topo_.lower->forwarded());
}

TEST_F(LoadBalancerTest, QueueDrainsAfterSplit) {
  run_scenario(6.0, 1600.0);
  ASSERT_TRUE(balancer_->balanced());

  // Find the maximum backlog before the split and the final backlog.
  const auto& samples = reporter_->samples();
  ASSERT_GT(samples.size(), 5u);
  std::size_t peak = 0;
  for (const auto& s : samples) peak = std::max(peak, s.backlog);
  EXPECT_GT(peak, 75u);  // reached the congested band
  // After the split the upper queue falls back out of the congested band
  // even as the offered load keeps rising (each path sees ~800 pps <
  // 1000 pps capacity).
  EXPECT_LT(samples.back().backlog, 76u);
}

TEST_F(LoadBalancerTest, LightLoadNeverSplits) {
  run_scenario(3.0, 500.0);  // always below path capacity
  EXPECT_FALSE(balancer_->balanced());
  EXPECT_EQ(topo_.lower->forwarded(), 0u);
}

TEST_F(LoadBalancerTest, BalanceCallbackFires) {
  bool fired = false;
  balancer_->on_balance([&] { fired = true; });
  run_scenario(6.0, 1800.0);
  EXPECT_TRUE(fired);
}

TEST_F(LoadBalancerTest, ValidatesSplitPorts) {
  LoadBalancerConfig bad;
  bad.split_ports = {1};
  EXPECT_THROW(LoadBalancerApp(*controller_, sdn_channel_, dpid_, plan_,
                               device_, bad),
               std::invalid_argument);
}

// ------------------------------------------------------------------
// Queue monitoring (§6, Fig 5c-d): bands rise with a burst, fall after.
TEST(QueueMonitorScenario, BandsFollowQueueLife) {
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  core::FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 100.0});

  auto& sw = net.add_switch("s1");
  auto& h1 = net.add_host("h1", net::make_ipv4(10, 0, 0, 1));
  auto& h2 = net.add_host("h2", net::make_ipv4(10, 0, 0, 2));
  net::LinkSpec fast;
  fast.rate_bps = 1e9;
  net::LinkSpec slow;
  slow.rate_bps = 8e6;  // 1000 pps bottleneck
  slow.queue_capacity = 200;
  net.connect(h1, sw, fast);
  const std::size_t out = net.connect(h2, sw, slow);
  net::FlowEntry fwd;
  fwd.priority = 1;
  fwd.actions = {net::Action::output(out)};
  sw.flow_table().add(fwd, 0);

  const auto speaker = channel.add_source("s1", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, speaker, 0);
  mp::MpEmitter emitter(net.loop(), bridge, 0);

  core::MdnController::Config cfg;
  cfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, cfg);

  const auto dev = plan.add_device("s1", 3);
  QueueToneConfig qcfg;
  qcfg.port_index = out;
  QueueToneReporter reporter(sw, emitter, plan, dev, qcfg);
  QueueMonitorApp monitor(controller, plan, dev);

  reporter.start();
  controller.start();

  // Burst slightly above the bottleneck (net +100 pkts/s) so successive
  // 300 ms samples walk through the 25/75 bands, then silence.
  net::SourceConfig scfg;
  scfg.flow = {h1.ip(), h2.ip(), 40000, 80, net::IpProto::kTcp};
  scfg.start = 300 * net::kMillisecond;
  scfg.stop = net::from_seconds(2.3);
  net::CbrSource burst(h1, scfg, 1100.0);
  burst.start();

  net.loop().schedule_at(net::from_seconds(5.0), [&] {
    controller.stop();
    reporter.stop();
  });
  net.loop().run();

  // All three bands were heard...
  std::set<std::size_t> bands;
  for (const auto& ev : monitor.events()) bands.insert(ev.band);
  EXPECT_TRUE(bands.contains(0));
  EXPECT_TRUE(bands.contains(1));
  EXPECT_TRUE(bands.contains(2));
  // ...the queue filled through 1 to 2, and ended back at 0 ("after all
  // traffic has been sent ... the controller is notified with another
  // sound at a lower frequency").
  ASSERT_GT(monitor.events().size(), 3u);
  EXPECT_EQ(monitor.events().back().band, 0u);
  EXPECT_EQ(monitor.current_band(), 0u);

  // Band order on the way up: a 0 -> 1 transition precedes the first 2.
  std::size_t first_two = SIZE_MAX, first_one = SIZE_MAX;
  const auto& evs = monitor.events();
  for (std::size_t i = 0; i < evs.size(); ++i) {
    if (evs[i].band == 1 && first_one == SIZE_MAX) first_one = i;
    if (evs[i].band == 2 && first_two == SIZE_MAX) first_two = i;
  }
  ASSERT_NE(first_one, SIZE_MAX);
  ASSERT_NE(first_two, SIZE_MAX);
  EXPECT_LT(first_one, first_two);
}

}  // namespace
}  // namespace mdn::core
