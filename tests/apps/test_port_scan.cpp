#include "mdn/port_scan.h"

#include <gtest/gtest.h>

#include "app_fixture.h"
#include "net/traffic.h"

namespace mdn::core {
namespace {

using test::SingleSwitchApp;

class PortScanTest : public SingleSwitchApp {
 protected:
  PortScanConfig make_config() {
    PortScanConfig cfg;
    cfg.first_port = 7000;
    cfg.tone_duration_s = 0.04;
    cfg.window_s = 3.0;
    cfg.distinct_threshold = 8;
    return cfg;
  }

  void setup(std::size_t symbols = 24) {
    init_mdn(60 * net::kMillisecond);
    install_forwarding();
    device_ = plan_.add_device("s1", symbols);
    reporter_ = std::make_unique<PortScanReporter>(*sw_, *emitter_, plan_,
                                                   device_, make_config());
    detector_ = std::make_unique<PortScanDetector>(*controller_, plan_,
                                                   device_, make_config());
    controller_->start();
  }

  void launch_scan(std::uint16_t first, std::uint16_t last,
                   net::SimTime per_port = 100 * net::kMillisecond) {
    net::SourceConfig cfg;
    cfg.flow = flow();
    cfg.start = 100 * net::kMillisecond;
    cfg.stop = net::from_seconds(30.0);
    scan_ = std::make_unique<net::PortScanSource>(*h1_, cfg, first, last,
                                                  per_port);
    scan_->start();
  }

  DeviceId device_ = 0;
  std::unique_ptr<PortScanReporter> reporter_;
  std::unique_ptr<PortScanDetector> detector_;
  std::unique_ptr<net::PortScanSource> scan_;
};

TEST_F(PortScanTest, PortToSymbolMappingCyclic) {
  setup(24);
  EXPECT_EQ(reporter_->symbol_for_port(7000), 0u);
  EXPECT_EQ(reporter_->symbol_for_port(7001), 1u);
  EXPECT_EQ(reporter_->symbol_for_port(7024), 0u);  // wraps at 24
  EXPECT_DOUBLE_EQ(reporter_->frequency_for_port(7003),
                   plan_.frequency(device_, 3));
}

TEST_F(PortScanTest, SequentialScanRaisesAlert) {
  setup();
  launch_scan(7000, 7020);
  run_for(4.0);

  ASSERT_FALSE(detector_->alerts().empty());
  const auto& alert = detector_->alerts().front();
  EXPECT_GE(alert.distinct_tones, 8u);
  EXPECT_GT(detector_->events_heard(), 10u);
}

TEST_F(PortScanTest, ScanSweepsAscendingFrequencies) {
  setup();
  launch_scan(7000, 7015);
  run_for(3.0);

  // The controller's event log should show a monotone-increasing
  // frequency staircase — the Fig 4c sweep.
  const auto& log = controller_->event_log();
  ASSERT_GT(log.size(), 8u);
  std::size_t ascents = 0;
  for (std::size_t i = 1; i < log.size(); ++i) {
    if (log[i].frequency_hz > log[i - 1].frequency_hz) ++ascents;
  }
  EXPECT_GT(ascents, log.size() * 3 / 4);
}

TEST_F(PortScanTest, SingleServiceTrafficRaisesNoAlert) {
  setup();
  net::SourceConfig cfg;
  cfg.flow = flow(7005);
  cfg.stop = net::from_seconds(4.0);
  net::CbrSource steady(*h1_, cfg, 50.0);
  steady.start();
  run_for(4.5);
  // One port -> one distinct tone, far below the threshold.
  EXPECT_TRUE(detector_->alerts().empty());
}

TEST_F(PortScanTest, FewPortsBelowThresholdNoAlert) {
  setup();
  launch_scan(7000, 7005);  // 6 ports < threshold 8
  run_for(3.0);
  EXPECT_TRUE(detector_->alerts().empty());
}

TEST_F(PortScanTest, SlowScanOutsideWindowEvadesButFastDoesNot) {
  // A scan slower than the window does not accumulate enough distinct
  // tones (the classic evasion); this documents the detector's bound.
  setup();
  launch_scan(7000, 7020, 600 * net::kMillisecond);  // 0.6 s per port
  run_for(8.0);
  EXPECT_TRUE(detector_->alerts().empty());
}

TEST_F(PortScanTest, AlertHandlerInvoked) {
  setup();
  int alerts = 0;
  detector_->on_alert([&](const PortScanDetector::Alert&) { ++alerts; });
  launch_scan(7000, 7020);
  run_for(4.0);
  EXPECT_GE(alerts, 1);
}

}  // namespace
}  // namespace mdn::core
