#include "mp/bridge.h"

#include <gtest/gtest.h>

#include "dsp/fft.h"
#include "dsp/spectrum.h"
#include "dsp/window.h"

namespace mdn::mp {
namespace {

constexpr double kSampleRate = 48000.0;

struct BridgeFixture : ::testing::Test {
  BridgeFixture()
      : channel(kSampleRate),
        source(channel.add_source("pi", 1.0)),
        bridge(loop, channel, source, /*processing_delay=*/0) {}

  double tone_amplitude_at(double freq, double start_s, double dur_s) {
    const auto w = channel.render(start_s, dur_s);
    const auto window = dsp::make_window(dsp::WindowKind::kHann, w.size());
    const auto spec = dsp::amplitude_spectrum(w.samples(), window);
    const auto bin = dsp::frequency_bin(freq, w.size(), kSampleRate);
    double best = 0.0;
    for (std::size_t k = bin >= 2 ? bin - 2 : 0;
         k <= bin + 2 && k < spec.size(); ++k) {
      best = std::max(best, spec[k]);
    }
    return best;
  }

  net::EventLoop loop;
  audio::AcousticChannel channel;
  audio::SourceId source;
  PiSpeakerBridge bridge;
};

TEST_F(BridgeFixture, PlayEmitsToneAtRequestedFrequency) {
  MpMessage msg;
  msg.frequency_hz = 880.0;
  msg.duration_s = 0.1;
  msg.intensity_db_spl = 94.0;  // amplitude 1.0 at 1 m
  bridge.play(msg);
  EXPECT_EQ(bridge.played(), 1u);
  EXPECT_NEAR(tone_amplitude_at(880.0, 0.0, 0.1), 1.0, 0.1);
  EXPECT_LT(tone_amplitude_at(2000.0, 0.0, 0.1), 0.01);
}

TEST_F(BridgeFixture, IntensityControlsAmplitude) {
  MpMessage quiet;
  quiet.frequency_hz = 700.0;
  quiet.duration_s = 0.1;
  quiet.intensity_db_spl = 74.0;  // 20 dB below reference -> 0.1
  bridge.play(quiet);
  EXPECT_NEAR(tone_amplitude_at(700.0, 0.0, 0.1), 0.1, 0.02);
}

TEST_F(BridgeFixture, ProcessingDelayShiftsTone) {
  PiSpeakerBridge slow(loop, channel, source,
                       /*processing_delay=*/50 * net::kMillisecond);
  MpMessage msg;
  msg.frequency_hz = 600.0;
  msg.duration_s = 0.04;
  msg.intensity_db_spl = 94.0;
  slow.play(msg);
  // Nothing during the Pi's processing window...
  EXPECT_LT(tone_amplitude_at(600.0, 0.0, 0.04), 0.01);
  // ...tone appears afterwards.
  EXPECT_GT(tone_amplitude_at(600.0, 0.05, 0.04), 0.5);
}

TEST_F(BridgeFixture, WirePathRoundTrips) {
  MpMessage msg;
  msg.frequency_hz = 1234.0;
  msg.duration_s = 0.05;
  msg.intensity_db_spl = 94.0;
  bridge.on_wire(marshal(msg));
  EXPECT_EQ(bridge.played(), 1u);
  EXPECT_EQ(bridge.malformed(), 0u);
  EXPECT_GT(tone_amplitude_at(1234.0, 0.0, 0.05), 0.5);
}

TEST_F(BridgeFixture, MalformedWireCountedAndIgnored) {
  auto wire = marshal(MpMessage{});
  wire[6] ^= 0xff;  // corrupt frequency -> checksum fails
  bridge.on_wire(wire);
  EXPECT_EQ(bridge.played(), 0u);
  EXPECT_EQ(bridge.malformed(), 1u);
  EXPECT_EQ(bridge.last_error(), MpError::kBadChecksum);
}

TEST_F(BridgeFixture, EmitterMarshalsThroughBridge) {
  MpEmitter emitter(loop, bridge, /*min_gap=*/0);
  EXPECT_TRUE(emitter.emit(500.0, 0.05, 94.0));
  EXPECT_EQ(emitter.emitted(), 1u);
  EXPECT_EQ(bridge.played(), 1u);
  EXPECT_GT(tone_amplitude_at(500.0, 0.0, 0.05), 0.5);
}

TEST_F(BridgeFixture, EmitterEnforcesMinGap) {
  MpEmitter emitter(loop, bridge, /*min_gap=*/100 * net::kMillisecond);
  EXPECT_TRUE(emitter.emit(500.0, 0.03, 70.0));
  EXPECT_FALSE(emitter.emit(500.0, 0.03, 70.0));  // same instant
  EXPECT_EQ(emitter.suppressed(), 1u);

  loop.run_until(50 * net::kMillisecond);
  EXPECT_FALSE(emitter.emit(500.0, 0.03, 70.0));  // still inside the gap

  loop.run_until(150 * net::kMillisecond);
  EXPECT_TRUE(emitter.emit(500.0, 0.03, 70.0));
  EXPECT_EQ(emitter.emitted(), 2u);
  EXPECT_EQ(emitter.suppressed(), 2u);
}

TEST_F(BridgeFixture, EmitterSequenceNumbersAdvance) {
  MpEmitter emitter(loop, bridge, 0);
  emitter.emit(500.0, 0.01, 70.0);
  emitter.emit(600.0, 0.01, 70.0);
  // Two distinct tones scheduled (sequence uniqueness is internal; we
  // assert both got through).
  EXPECT_EQ(bridge.played(), 2u);
}

TEST_F(BridgeFixture, DistanceAttenuatesBridgeOutput) {
  const auto far_source = channel.add_source("far-pi", 2.0);
  PiSpeakerBridge far_bridge(loop, channel, far_source, 0);
  MpMessage msg;
  msg.frequency_hz = 750.0;
  msg.duration_s = 0.1;
  msg.intensity_db_spl = 94.0;
  far_bridge.play(msg);
  EXPECT_NEAR(tone_amplitude_at(750.0, 0.0, 0.1), 0.5, 0.05);
}

}  // namespace
}  // namespace mdn::mp
