#include "mp/message.h"

#include <gtest/gtest.h>

#include "audio/rng.h"

namespace mdn::mp {
namespace {

TEST(MpMessage, WireSizeIsFixed) {
  MpMessage msg;
  EXPECT_EQ(marshal(msg).size(), kWireSize);
}

TEST(MpMessage, RoundTripExactFields) {
  MpMessage msg;
  msg.frequency_hz = 743.21;   // encodable at centi-Hz
  msg.duration_s = 0.05;       // 50 ms
  msg.intensity_db_spl = 70.5; // deci-dB
  msg.sequence = 12345;

  const auto decoded = unmarshal(marshal(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->frequency_hz, 743.21);
  EXPECT_DOUBLE_EQ(decoded->duration_s, 0.05);
  EXPECT_DOUBLE_EQ(decoded->intensity_db_spl, 70.5);
  EXPECT_EQ(decoded->sequence, 12345);
}

TEST(MpMessage, QuantisationIsToWireResolution) {
  MpMessage msg;
  msg.frequency_hz = 500.004;   // rounds to 500.00
  msg.duration_s = 0.0304;      // rounds to 30 ms
  msg.intensity_db_spl = 61.26; // rounds to 61.3
  const auto decoded = unmarshal(marshal(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->frequency_hz, 500.0);
  EXPECT_DOUBLE_EQ(decoded->duration_s, 0.030);
  EXPECT_DOUBLE_EQ(decoded->intensity_db_spl, 61.3);
}

TEST(MpMessage, TruncatedBufferRejected) {
  const auto wire = marshal(MpMessage{});
  MpError err = MpError::kNone;
  EXPECT_FALSE(unmarshal({wire.data(), wire.size() - 1}, &err).has_value());
  EXPECT_EQ(err, MpError::kTruncated);
  EXPECT_FALSE(unmarshal({}, &err).has_value());
  EXPECT_EQ(err, MpError::kTruncated);
}

TEST(MpMessage, BadMagicRejected) {
  auto wire = marshal(MpMessage{});
  wire[0] = 'X';
  MpError err = MpError::kNone;
  EXPECT_FALSE(unmarshal(wire, &err).has_value());
  EXPECT_EQ(err, MpError::kBadMagic);
}

TEST(MpMessage, ChecksumDetectsEveryByteFlip) {
  const auto wire = marshal([] {
    MpMessage m;
    m.frequency_hz = 700.0;
    m.duration_s = 0.05;
    m.intensity_db_spl = 70.0;
    m.sequence = 7;
    return m;
  }());
  // Flip each payload byte (skip magic: flips there hit kBadMagic).
  for (std::size_t i = 4; i < 14; ++i) {
    auto corrupted = wire;
    corrupted[i] ^= 0x40;
    MpError err = MpError::kNone;
    EXPECT_FALSE(unmarshal(corrupted, &err).has_value()) << "byte " << i;
    EXPECT_EQ(err, MpError::kBadChecksum) << "byte " << i;
  }
}

TEST(MpMessage, ZeroFrequencyOrDurationRejected) {
  MpMessage zero_f;
  zero_f.frequency_hz = 0.0;
  MpError err = MpError::kNone;
  EXPECT_FALSE(unmarshal(marshal(zero_f), &err).has_value());
  EXPECT_EQ(err, MpError::kFieldRange);

  MpMessage zero_d;
  zero_d.duration_s = 0.0;
  EXPECT_FALSE(unmarshal(marshal(zero_d), &err).has_value());
  EXPECT_EQ(err, MpError::kFieldRange);
}

TEST(MpMessage, OversizedValuesClampOnMarshal) {
  MpMessage big;
  big.frequency_hz = 1e12;
  big.duration_s = 1e6;
  big.intensity_db_spl = 1e9;
  const auto decoded = unmarshal(marshal(big));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->frequency_hz, 42949672.95);
  EXPECT_DOUBLE_EQ(decoded->duration_s, 65.535);
  EXPECT_DOUBLE_EQ(decoded->intensity_db_spl, 6553.5);
}

TEST(MpMessage, InternetChecksumKnownVectors) {
  // All-zero data checksums to 0xffff (complement of 0).
  const std::vector<std::uint8_t> zeros(8, 0);
  EXPECT_EQ(internet_checksum(zeros), 0xffff);
  // Odd-length data is padded with a zero byte.
  const std::vector<std::uint8_t> odd{0x01};
  EXPECT_EQ(internet_checksum(odd), static_cast<std::uint16_t>(~0x0100));
}

TEST(MpMessage, ExtraTrailingBytesIgnored) {
  auto wire = marshal(MpMessage{});
  wire.push_back(0xab);
  wire.push_back(0xcd);
  EXPECT_TRUE(unmarshal(wire).has_value());
}

TEST(MpMessage, RandomBuffersNeverParseOrCrash) {
  // Fuzz-style property: arbitrary byte soup must be rejected cleanly.
  // (Without the correct magic + checksum, acceptance is ~impossible.)
  audio::Rng rng(777);
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> junk(rng.below(40));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    if (unmarshal(junk).has_value()) ++accepted;
  }
  EXPECT_EQ(accepted, 0);
}

TEST(MpMessage, BitFlipSweepAlwaysDetected) {
  // Exhaustive single-bit-flip sweep over the whole frame: every flip is
  // caught by magic, checksum or range validation.
  const auto wire = marshal([] {
    MpMessage m;
    m.frequency_hz = 1234.56;
    m.duration_s = 0.25;
    m.intensity_db_spl = 71.3;
    m.sequence = 0xbeef;
    return m;
  }());
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = wire;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(unmarshal(corrupted).has_value())
          << "byte " << byte << " bit " << bit;
    }
  }
}

// Property sweep: random messages round-trip to wire resolution.
class MpRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpRoundTrip, RandomMessagesSurviveWire) {
  audio::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    MpMessage msg;
    msg.frequency_hz = rng.uniform(0.01, 20000.0);
    msg.duration_s = rng.uniform(0.001, 10.0);
    msg.intensity_db_spl = rng.uniform(0.1, 120.0);
    msg.sequence = static_cast<std::uint16_t>(rng.below(65536));

    const auto decoded = unmarshal(marshal(msg));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_NEAR(decoded->frequency_hz, msg.frequency_hz, 0.005 + 1e-9);
    EXPECT_NEAR(decoded->duration_s, msg.duration_s, 0.0005 + 1e-9);
    EXPECT_NEAR(decoded->intensity_db_spl, msg.intensity_db_spl,
                0.05 + 1e-9);
    EXPECT_EQ(decoded->sequence, msg.sequence);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mdn::mp
