#include "dsp/ecdf.h"

#include <gtest/gtest.h>

#include <vector>

namespace mdn::dsp {
namespace {

TEST(Ecdf, EmptyBehaviour) {
  Ecdf e;
  EXPECT_EQ(e.size(), 0u);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.0);
  EXPECT_THROW(e.quantile(0.5), std::logic_error);
  EXPECT_THROW(e.min(), std::logic_error);
  EXPECT_THROW(e.max(), std::logic_error);
  EXPECT_THROW(e.mean(), std::logic_error);
  EXPECT_TRUE(e.curve(10).empty());
}

TEST(Ecdf, CdfStepFunction) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0};
  Ecdf e(samples);
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.cdf(100.0), 1.0);
}

TEST(Ecdf, QuantilesOfKnownSet) {
  const std::vector<double> samples{5.0, 1.0, 3.0, 2.0, 4.0};
  Ecdf e(samples);
  EXPECT_DOUBLE_EQ(e.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.9), 5.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
}

TEST(Ecdf, QuantileClampsOutOfRange) {
  Ecdf e(std::vector<double>{1.0, 2.0});
  EXPECT_DOUBLE_EQ(e.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(2.0), 2.0);
}

TEST(Ecdf, IncrementalAddKeepsOrderCorrect) {
  Ecdf e;
  e.add(3.0);
  e.add(1.0);
  EXPECT_DOUBLE_EQ(e.min(), 1.0);
  e.add(0.5);  // add after a sorted read
  EXPECT_DOUBLE_EQ(e.min(), 0.5);
  EXPECT_DOUBLE_EQ(e.max(), 3.0);
  EXPECT_EQ(e.size(), 3u);
}

TEST(Ecdf, MeanIsArithmeticAverage) {
  Ecdf e(std::vector<double>{1.0, 2.0, 3.0, 6.0});
  EXPECT_DOUBLE_EQ(e.mean(), 3.0);
}

TEST(Ecdf, CurveIsMonotoneAndEndsAtMax) {
  Ecdf e(std::vector<double>{4.0, 2.0, 9.0, 7.0, 5.0});
  const auto curve = e.curve(5);
  ASSERT_EQ(curve.size(), 5u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GT(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().first, 9.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Ecdf, DuplicatesHandled) {
  Ecdf e(std::vector<double>{2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(e.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(e.quantile(0.75), 2.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.76), 5.0);
}

TEST(Ecdf, PaperStyleP90Query) {
  // Mimics the Fig 2b check "~90% of samples processed in <= 0.35 ms".
  std::vector<double> latencies;
  for (int i = 1; i <= 100; ++i) latencies.push_back(i * 0.003);  // 3..300 us
  Ecdf e(latencies);
  EXPECT_NEAR(e.quantile(0.9), 0.27, 1e-9);
  EXPECT_GE(e.cdf(0.35), 0.9);
}

}  // namespace
}  // namespace mdn::dsp
