// FFT correctness: oracle comparison, algebraic invariants and the
// frequency-axis helpers the tone detector depends on.
#include "dsp/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "audio/rng.h"
#include "dsp/spectrum.h"

namespace mdn::dsp {
namespace {

constexpr double kTol = 1e-9;

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  audio::Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return v;
}

void expect_near(const std::vector<Complex>& a, const std::vector<Complex>& b,
                 double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "bin " << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "bin " << i;
  }
}

TEST(Fft, EmptyInputYieldsEmptyOutput) {
  EXPECT_TRUE(fft({}).empty());
  EXPECT_TRUE(ifft({}).empty());
}

TEST(Fft, SingleSampleIsIdentity) {
  const std::vector<Complex> in{Complex{3.5, -1.25}};
  const auto out = fft(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].real(), 3.5, kTol);
  EXPECT_NEAR(out[0].imag(), -1.25, kTol);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<Complex> in(64, Complex{0.0, 0.0});
  in[0] = Complex{1.0, 0.0};
  const auto out = fft(in);
  for (const auto& x : out) {
    EXPECT_NEAR(x.real(), 1.0, kTol);
    EXPECT_NEAR(x.imag(), 0.0, kTol);
  }
}

TEST(Fft, DcSignalConcentratesInBinZero) {
  std::vector<Complex> in(128, Complex{2.0, 0.0});
  const auto out = fft(in);
  EXPECT_NEAR(out[0].real(), 256.0, 1e-8);
  for (std::size_t k = 1; k < out.size(); ++k) {
    EXPECT_NEAR(std::abs(out[k]), 0.0, 1e-8) << "bin " << k;
  }
}

TEST(Fft, PureSineLandsInItsBin) {
  const std::size_t n = 256;
  const std::size_t bin = 13;
  std::vector<Complex> in(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double ph = 2.0 * std::numbers::pi * static_cast<double>(bin) *
                      static_cast<double>(t) / static_cast<double>(n);
    in[t] = Complex{std::cos(ph), 0.0};
  }
  const auto mag = magnitude(fft(in));
  // cos splits between bin and N-bin, each N/2.
  EXPECT_NEAR(mag[bin], 128.0, 1e-7);
  EXPECT_NEAR(mag[n - bin], 128.0, 1e-7);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != bin && k != n - bin) {
      EXPECT_LT(mag[k], 1e-7) << "bin " << k;
    }
  }
}

TEST(Fft, MatchesReferenceDftPowerOfTwo) {
  const auto in = random_signal(64, 1);
  expect_near(fft(in), dft_reference(in), 1e-8);
}

TEST(Fft, MatchesReferenceDftNonPowerOfTwo) {
  for (std::size_t n : {3u, 5u, 12u, 100u, 241u}) {
    const auto in = random_signal(n, n);
    expect_near(fft(in), dft_reference(in), 1e-7);
  }
}

TEST(Fft, InverseRoundTripPowerOfTwo) {
  const auto in = random_signal(512, 7);
  expect_near(ifft(fft(in)), in, 1e-9);
}

TEST(Fft, InverseRoundTripBluestein) {
  const auto in = random_signal(300, 9);
  expect_near(ifft(fft(in)), in, 1e-8);
}

TEST(Fft, LinearityHolds) {
  const auto a = random_signal(128, 11);
  const auto b = random_signal(128, 13);
  std::vector<Complex> combo(128);
  const Complex alpha{2.0, 0.5};
  const Complex beta{-1.0, 3.0};
  for (std::size_t i = 0; i < 128; ++i) combo[i] = alpha * a[i] + beta * b[i];

  const auto fa = fft(a);
  const auto fb = fft(b);
  auto expected = fa;
  for (std::size_t i = 0; i < 128; ++i) {
    expected[i] = alpha * fa[i] + beta * fb[i];
  }
  expect_near(fft(combo), expected, 1e-8);
}

TEST(Fft, ParsevalEnergyConserved) {
  const auto in = random_signal(1024, 17);
  double time_energy = 0.0;
  for (const auto& x : in) time_energy += std::norm(x);
  const auto out = fft(in);
  double freq_energy = 0.0;
  for (const auto& x : out) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(in.size()), time_energy,
              1e-6);
}

TEST(Fft, RealFftMatchesReferenceDft) {
  // The packed-real fast path must agree with the oracle exactly.
  for (std::size_t n : {4u, 8u, 64u, 256u, 2048u}) {
    audio::Rng rng(n);
    std::vector<double> in(n);
    std::vector<Complex> cin(n);
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = rng.uniform(-1.0, 1.0);
      cin[i] = Complex{in[i], 0.0};
    }
    expect_near(fft_real(in), dft_reference(cin), 1e-7);
  }
}

TEST(Fft, RealFftNonPowerOfTwoFallback) {
  audio::Rng rng(99);
  std::vector<double> in(120);
  std::vector<Complex> cin(120);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = rng.uniform(-1.0, 1.0);
    cin[i] = Complex{in[i], 0.0};
  }
  expect_near(fft_real(in), dft_reference(cin), 1e-7);
}

TEST(Fft, RealInputIsConjugateSymmetric) {
  audio::Rng rng(23);
  std::vector<double> in(256);
  for (auto& x : in) x = rng.uniform(-1.0, 1.0);
  const auto out = fft_real(in);
  for (std::size_t k = 1; k < in.size() / 2; ++k) {
    EXPECT_NEAR(out[k].real(), out[in.size() - k].real(), 1e-9);
    EXPECT_NEAR(out[k].imag(), -out[in.size() - k].imag(), 1e-9);
  }
}

TEST(Fft, Radix2RejectsNonPowerOfTwo) {
  std::vector<Complex> data(12);
  EXPECT_THROW(fft_radix2_inplace(data, false), std::invalid_argument);
}

TEST(Fft, NextPowerOfTwo) {
  EXPECT_EQ(next_power_of_two(0), 1u);
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(2), 2u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(1024), 1024u);
  EXPECT_EQ(next_power_of_two(1025), 2048u);
}

TEST(Fft, IsPowerOfTwo) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(4096));
  EXPECT_FALSE(is_power_of_two(4095));
}

TEST(Fft, BinFrequencyAndInverse) {
  // 48 kHz, 4096-point: bin width ~11.72 Hz.
  EXPECT_NEAR(bin_frequency(100, 4096, 48000.0), 1171.875, 1e-9);
  EXPECT_EQ(frequency_bin(1171.875, 4096, 48000.0), 100u);
  EXPECT_EQ(frequency_bin(0.0, 4096, 48000.0), 0u);
}

TEST(Fft, FrequencyBinClampsToNyquist) {
  // Out-of-range frequencies clamp to the Nyquist bin n/2 — the last
  // entry of a single-sided spectrum — never into the mirrored upper
  // half (the old n - 1 clamp aliased them there).
  EXPECT_EQ(frequency_bin(1e9, 4096, 48000.0), 2048u);
  EXPECT_EQ(frequency_bin(24000.0, 4096, 48000.0), 2048u);  // exactly Nyquist
  // Just below Nyquist rounds to its own bin, not the clamp.
  EXPECT_EQ(frequency_bin(24000.0 - 11.72, 4096, 48000.0), 2047u);
  // A half-spectrum consumer indexing amplitude_spectrum output
  // (n/2 + 1 values) can always index the result directly.
  const std::size_t n = 256;
  const std::vector<double> sig(n, 1.0);
  const std::vector<double> win(n, 1.0);
  const auto spec = amplitude_spectrum_padded(sig, win, n);
  EXPECT_LT(frequency_bin(1e9, n, 48000.0), spec.size());
  // Degenerate sizes stay in range.
  EXPECT_EQ(frequency_bin(100.0, 0, 48000.0), 0u);
  EXPECT_EQ(frequency_bin(100.0, 1, 48000.0), 0u);
}

TEST(Fft, MagnitudeAndPowerAgree) {
  const auto in = random_signal(32, 31);
  const auto spec = fft(in);
  const auto mag = magnitude(spec);
  const auto pow = power(spec);
  for (std::size_t i = 0; i < spec.size(); ++i) {
    EXPECT_NEAR(mag[i] * mag[i], pow[i], 1e-9);
  }
}

// Property sweep: round trip over many sizes, both kernels.
class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, ForwardInverseIsIdentity) {
  const std::size_t n = GetParam();
  const auto in = random_signal(n, 1000 + n);
  expect_near(ifft(fft(in)), in, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 7, 16, 33, 64, 100, 128,
                                           255, 256, 257, 480, 512, 1000,
                                           1024, 2400, 4096));

}  // namespace
}  // namespace mdn::dsp
