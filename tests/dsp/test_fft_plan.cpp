// Planned FFT engine: oracle comparison against the naive DFT, the
// packed-real path against promote-to-complex, and the process-wide
// plan cache contract (reuse, identical spectra, thread safety).
#include "dsp/fft_plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "audio/rng.h"

namespace mdn::dsp {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  audio::Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return v;
}

std::vector<double> random_real(std::size_t n, std::uint64_t seed) {
  audio::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

void expect_near(std::span<const Complex> a, std::span<const Complex> b,
                 double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "bin " << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "bin " << i;
  }
}

TEST(FftPlan, MatchesReferenceDftAcrossSizesAndDirections) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u, 12u, 64u, 100u, 241u, 256u}) {
    const auto in = random_signal(n, 100 + n);
    const FftPlan forward(n, false);
    expect_near(forward.transform(in), dft_reference(in), 1e-7);

    // Inverse plan == conjugate transform: ifft(X) * N has the plan's
    // (unscaled) output.
    const FftPlan backward(n, true);
    auto expected = ifft(dft_reference(in));
    for (auto& x : expected) x *= static_cast<double>(n);
    expect_near(backward.transform(dft_reference(in)), expected, 1e-6);
  }
}

TEST(FftPlan, ForwardInverseRoundTrip) {
  for (std::size_t n : {4u, 7u, 128u, 300u, 1024u}) {
    const auto in = random_signal(n, 7 * n);
    const FftPlan forward(n, false);
    const FftPlan backward(n, true);
    auto data = forward.transform(in);
    data = backward.transform(data);
    for (auto& x : data) x /= static_cast<double>(n);
    expect_near(data, in, 1e-7);
  }
}

TEST(FftPlan, ExecutesWithExactScratchSize) {
  // The documented contract: scratch_size() elements suffice, and
  // power-of-two plans need none at all.
  const FftPlan pow2(512);
  EXPECT_EQ(pow2.scratch_size(), 0u);
  auto data = random_signal(512, 3);
  const auto expected = dft_reference(data);
  pow2.execute(data);  // empty scratch
  expect_near(data, expected, 1e-7);

  const FftPlan bluestein(100);
  EXPECT_GT(bluestein.scratch_size(), 0u);
  auto data2 = random_signal(100, 4);
  const auto expected2 = dft_reference(data2);
  std::vector<Complex> scratch(bluestein.scratch_size());
  bluestein.execute(data2, scratch);
  expect_near(data2, expected2, 1e-7);
}

TEST(FftPlan, ThrowsOnSizeMismatchAndShortScratch) {
  const FftPlan plan(64);
  std::vector<Complex> wrong(32);
  EXPECT_THROW(plan.execute(wrong), std::invalid_argument);

  const FftPlan bluestein(12);
  std::vector<Complex> data(12);
  std::vector<Complex> small(bluestein.scratch_size() - 1);
  EXPECT_THROW(bluestein.execute(data, small), std::invalid_argument);
}

TEST(FftPlan, RepeatedExecutionIsBitIdentical) {
  // Precomputed tables make execute() a pure function of its input.
  const FftPlan plan(256);
  const auto in = random_signal(256, 21);
  const auto a = plan.transform(in);
  const auto b = plan.transform(in);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].real(), b[i].real());
    EXPECT_EQ(a[i].imag(), b[i].imag());
  }
}

TEST(RealFftPlan, MatchesPromoteToComplex) {
  for (std::size_t n : {4u, 8u, 120u, 256u, 2048u, 2400u}) {
    const auto in = random_real(n, 50 + n);
    std::vector<Complex> cin(n);
    for (std::size_t i = 0; i < n; ++i) cin[i] = Complex{in[i], 0.0};
    const auto full = dft_reference(cin);

    const RealFftPlan plan(n);
    ASSERT_EQ(plan.bins(), n / 2 + 1);
    const auto half = plan.spectrum(in);
    expect_near(half, std::span<const Complex>(full).first(plan.bins()),
                1e-7);
  }
}

TEST(RealFftPlan, ExecutesWithExactScratchSize) {
  const RealFftPlan plan(1024);
  const auto in = random_real(1024, 9);
  std::vector<Complex> bins(plan.bins());
  std::vector<Complex> scratch(plan.scratch_size());
  plan.execute(in, bins, scratch);
  expect_near(bins, plan.spectrum(in), 0.0);
}

TEST(RealFftPlan, ThrowsOnBadBuffers) {
  const RealFftPlan plan(64);
  const auto in = random_real(64, 2);
  std::vector<Complex> bins(plan.bins());
  std::vector<Complex> scratch(plan.scratch_size());
  std::vector<double> wrong(32);
  EXPECT_THROW(plan.execute(wrong, bins, scratch), std::invalid_argument);
  std::vector<Complex> short_bins(plan.bins() - 1);
  EXPECT_THROW(plan.execute(in, short_bins, scratch), std::invalid_argument);
  std::vector<Complex> short_scratch(plan.scratch_size() - 1);
  EXPECT_THROW(plan.execute(in, bins, short_scratch), std::invalid_argument);
}

TEST(FftPlan, BatchSoaMatchesSoloExecuteBitwise) {
  // Lanes are independent channels: each lane of execute_batch_soa must
  // produce exactly the bits execute() produces for that lane's signal,
  // at any lane count (including lane counts that are not multiples of
  // the vector width).
  for (std::size_t n : {8u, 64u, 512u}) {
    const FftPlan plan(n);
    ASSERT_TRUE(plan.supports_batch());
    for (std::size_t lanes : {1u, 2u, 3u, 4u, 5u, 7u}) {
      std::vector<std::vector<Complex>> solo(lanes);
      std::vector<double> re(n * lanes), im(n * lanes);
      for (std::size_t l = 0; l < lanes; ++l) {
        const auto in = random_signal(n, 3000 + n + l);
        solo[l] = plan.transform(in);
        for (std::size_t i = 0; i < n; ++i) {
          re[i * lanes + l] = in[i].real();
          im[i * lanes + l] = in[i].imag();
        }
      }
      plan.execute_batch_soa(re, im, lanes);
      for (std::size_t l = 0; l < lanes; ++l) {
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(re[i * lanes + l], solo[l][i].real())
              << "n=" << n << " lanes=" << lanes << " lane " << l << " bin "
              << i;
          EXPECT_EQ(im[i * lanes + l], solo[l][i].imag())
              << "n=" << n << " lanes=" << lanes << " lane " << l << " bin "
              << i;
        }
      }
    }
  }
}

TEST(FftPlan, BatchSoaRejectsNonPow2) {
  const FftPlan bluestein(12);
  EXPECT_FALSE(bluestein.supports_batch());
  std::vector<double> re(12), im(12);
  EXPECT_THROW(bluestein.execute_batch_soa(re, im, 1), std::invalid_argument);
}

TEST(RealFftPlan, ExecuteBatchMatchesSoloExecuteBitwise) {
  for (std::size_t n : {8u, 256u, 2048u, 4096u}) {
    const RealFftPlan plan(n);
    ASSERT_TRUE(plan.supports_batch());
    for (std::size_t lanes : {1u, 2u, 3u, 4u}) {
      std::vector<std::vector<double>> inputs(lanes);
      std::vector<const double*> input_ptrs(lanes);
      std::vector<std::vector<Complex>> bins(lanes);
      std::vector<Complex*> bin_ptrs(lanes);
      for (std::size_t l = 0; l < lanes; ++l) {
        inputs[l] = random_real(n, 4000 + n + l);
        input_ptrs[l] = inputs[l].data();
        bins[l].resize(plan.bins());
        bin_ptrs[l] = bins[l].data();
      }
      std::vector<double> re(plan.batch_scratch_doubles(lanes));
      std::vector<double> im(plan.batch_scratch_doubles(lanes));
      plan.execute_batch(input_ptrs, bin_ptrs, re, im);
      for (std::size_t l = 0; l < lanes; ++l) {
        const auto solo = plan.spectrum(inputs[l]);
        ASSERT_EQ(bins[l].size(), solo.size());
        for (std::size_t k = 0; k < solo.size(); ++k) {
          EXPECT_EQ(bins[l][k].real(), solo[k].real())
              << "n=" << n << " lanes=" << lanes << " lane " << l << " bin "
              << k;
          EXPECT_EQ(bins[l][k].imag(), solo[k].imag())
              << "n=" << n << " lanes=" << lanes << " lane " << l << " bin "
              << k;
        }
      }
    }
  }
}

TEST(RealFftPlan, ExecuteBatchThrowsOnShortScratch) {
  const RealFftPlan plan(64);
  const auto in = random_real(64, 5);
  const double* inputs[] = {in.data()};
  std::vector<Complex> bins(plan.bins());
  Complex* outs[] = {bins.data()};
  std::vector<double> re(plan.batch_scratch_doubles(1));
  std::vector<double> im(plan.batch_scratch_doubles(1) - 1);
  EXPECT_THROW(
      plan.execute_batch(inputs, outs, re, im), std::invalid_argument);
}

TEST(PlanCache, ReturnsTheSamePlanForTheSameKey) {
  auto& cache = PlanCache::global();
  const auto a = cache.real_plan(4096);
  const auto b = cache.real_plan(4096);
  EXPECT_EQ(a.get(), b.get());

  const auto f = cache.complex_plan(333, false);
  const auto g = cache.complex_plan(333, false);
  EXPECT_EQ(f.get(), g.get());
  // Direction is part of the key.
  const auto inv = cache.complex_plan(333, true);
  EXPECT_NE(f.get(), inv.get());
}

TEST(PlanCache, CachedPlanProducesIdenticalSpectra) {
  // Two independent fetches of the same size must agree bit-for-bit
  // with each other and with a freshly planned transform.
  const auto in = random_real(512, 77);
  const auto a = PlanCache::global().real_plan(512)->spectrum(in);
  const auto b = PlanCache::global().real_plan(512)->spectrum(in);
  const auto fresh = RealFftPlan(512).spectrum(in);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].real(), b[k].real());
    EXPECT_EQ(a[k].imag(), b[k].imag());
    EXPECT_EQ(a[k].real(), fresh[k].real());
    EXPECT_EQ(a[k].imag(), fresh[k].imag());
  }
}

TEST(PlanCache, ConcurrentFetchAndExecuteIsSafe) {
  // Many threads hammering the same (new) sizes: the cache must hand
  // out consistent plans and concurrent execute() must stay correct.
  constexpr std::size_t kThreads = 8;
  const std::size_t n = 768;  // non power-of-two, unlikely cached yet
  const auto in = random_signal(n, 13);
  const auto expected = dft_reference(in);

  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto plan = PlanCache::global().complex_plan(n);
      for (int iter = 0; iter < 8; ++iter) {
        const auto out = plan->transform(in);
        double err = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          err = std::max(err, std::abs(out[k] - expected[k]));
        }
        if (err > 1e-6) return;
      }
      ok[t] = 1;
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ok[t], 1) << "thread " << t;
  }
}

}  // namespace
}  // namespace mdn::dsp
