#include "dsp/spectrum.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/simd.h"
#include "dsp/window.h"

namespace mdn::dsp {
namespace {

std::vector<double> sine(double freq, double amp, double sample_rate,
                         std::size_t n, double phase = 0.0) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = amp * std::sin(phase + 2.0 * std::numbers::pi * freq *
                                      static_cast<double>(i) / sample_rate);
  }
  return v;
}

TEST(Spectrum, DbConversionsRoundTrip) {
  EXPECT_NEAR(amplitude_to_db(1.0), 0.0, 1e-12);
  EXPECT_NEAR(amplitude_to_db(10.0), 20.0, 1e-12);
  EXPECT_NEAR(amplitude_to_db(0.1), -20.0, 1e-12);
  EXPECT_NEAR(db_to_amplitude(40.0), 100.0, 1e-9);
  for (double db : {-60.0, -6.0, 0.0, 12.0, 94.0}) {
    EXPECT_NEAR(amplitude_to_db(db_to_amplitude(db)), db, 1e-9);
  }
}

TEST(Spectrum, DbFloorsOnNonPositiveAmplitude) {
  EXPECT_DOUBLE_EQ(amplitude_to_db(0.0), -120.0);
  EXPECT_DOUBLE_EQ(amplitude_to_db(-3.0), -120.0);
  EXPECT_DOUBLE_EQ(amplitude_to_db(1e-12, 1.0, -90.0), -90.0);
}

// The normalisation contract: a bin-centred unit sine reports amplitude
// ~1.0 under every window.
class SpectrumWindowNorm : public ::testing::TestWithParam<WindowKind> {};

TEST_P(SpectrumWindowNorm, UnitSineReportsUnitAmplitude) {
  const std::size_t n = 4096;
  const double sr = 48000.0;
  const double freq = bin_frequency(300, n, sr);
  const auto s = sine(freq, 1.0, sr, n);
  const auto w = make_window(GetParam(), n);
  const auto spec = amplitude_spectrum(s, w);
  EXPECT_NEAR(spec[300], 1.0, 0.01) << window_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllWindows, SpectrumWindowNorm,
                         ::testing::Values(WindowKind::kRectangular,
                                           WindowKind::kHann,
                                           WindowKind::kHamming,
                                           WindowKind::kBlackman));

TEST(Spectrum, DcComponentReportedOnce) {
  const std::size_t n = 1024;
  std::vector<double> s(n, 0.7);
  const auto spec =
      amplitude_spectrum(s, make_window(WindowKind::kRectangular, n));
  EXPECT_NEAR(spec[0], 0.7, 1e-9);
}

TEST(Spectrum, SizeIsHalfPlusOne) {
  const std::size_t n = 512;
  const std::vector<double> s(n, 0.0);
  const auto spec = amplitude_spectrum(s, make_window(WindowKind::kHann, n));
  EXPECT_EQ(spec.size(), n / 2 + 1);
}

TEST(Spectrum, MismatchedWindowThrows) {
  const std::vector<double> s(64, 0.0);
  const auto w = make_window(WindowKind::kHann, 32);
  EXPECT_THROW(amplitude_spectrum(s, w), std::invalid_argument);
}

TEST(Spectrum, FindPeaksLocatesSingleTone) {
  const std::size_t n = 4096;
  const double sr = 48000.0;
  const auto s = sine(1000.0, 0.5, sr, n);
  const auto spec = amplitude_spectrum(s, make_window(WindowKind::kHann, n));
  const auto peaks = find_peaks(spec, sr, n, 0.1);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].frequency_hz, 1000.0, 2.0);
  EXPECT_NEAR(peaks[0].amplitude, 0.5, 0.05);
}

TEST(Spectrum, ParabolicInterpolationBeatsBinResolution) {
  // 48 kHz / 4096 = 11.7 Hz bins; place the tone between bins and expect
  // recovery within 1 Hz.
  const std::size_t n = 4096;
  const double sr = 48000.0;
  const double freq = 1005.3;
  const auto s = sine(freq, 1.0, sr, n);
  const auto spec = amplitude_spectrum(s, make_window(WindowKind::kHann, n));
  const auto peaks = find_peaks(spec, sr, n, 0.3);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(peaks[0].frequency_hz, freq, 1.0);
}

TEST(Spectrum, FindPeaksSeparatesTwoTones20HzApart) {
  // The §3 finding: ~20 Hz separation is the resolvability limit.  Two
  // *simultaneous* tones 20 Hz apart need an analysis window whose main
  // lobe is narrower than the gap: 16384 samples at 48 kHz (341 ms) gives
  // a Hann main lobe of ~11.7 Hz.
  const std::size_t n = 16384;
  const double sr = 48000.0;
  auto s = sine(740.0, 0.5, sr, n);
  const auto t = sine(760.0, 0.5, sr, n, 1.1);
  for (std::size_t i = 0; i < n; ++i) s[i] += t[i];
  const auto spec = amplitude_spectrum(s, make_window(WindowKind::kHann, n));
  const auto peaks = find_peaks(spec, sr, n, 0.1, 2);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_NEAR(peaks[0].frequency_hz, 740.0, 5.0);
  EXPECT_NEAR(peaks[1].frequency_hz, 760.0, 5.0);
}

TEST(Spectrum, PaddedSpectrumKeepsDataResolution) {
  // A 2400-sample (50 ms) block zero-padded to 8192 still reports the
  // tone amplitude and frequency correctly.
  const double sr = 48000.0;
  const std::size_t n = 2400;
  const auto s = sine(700.0, 0.4, sr, n);
  const auto w = make_window(WindowKind::kBlackman, n);
  const auto spec = amplitude_spectrum_padded(s, w, 8192);
  EXPECT_EQ(spec.size(), 8192u / 2 + 1);
  const auto peaks = find_peaks(spec, sr, 8192, 0.1, 8);
  ASSERT_FALSE(peaks.empty());
  EXPECT_NEAR(peaks[0].frequency_hz, 700.0, 3.0);
  EXPECT_NEAR(peaks[0].amplitude, 0.4, 0.02);
}

TEST(Spectrum, PaddedSpectrumValidatesArguments) {
  const std::vector<double> s(100, 0.0);
  const auto w = make_window(WindowKind::kHann, 100);
  EXPECT_THROW(amplitude_spectrum_padded(s, w, 64), std::invalid_argument);
  const auto w2 = make_window(WindowKind::kHann, 50);
  EXPECT_THROW(amplitude_spectrum_padded(s, w2, 256), std::invalid_argument);
}

TEST(Spectrum, FindPeaksIgnoresSubThresholdTones) {
  const std::size_t n = 4096;
  const double sr = 48000.0;
  auto s = sine(1000.0, 0.5, sr, n);
  const auto t = sine(3000.0, 0.01, sr, n);
  for (std::size_t i = 0; i < n; ++i) s[i] += t[i];
  const auto spec = amplitude_spectrum(s, make_window(WindowKind::kHann, n));
  const auto peaks = find_peaks(spec, sr, n, 0.1);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_NEAR(peaks[0].frequency_hz, 1000.0, 2.0);
}

TEST(Spectrum, FindPeaksOnSilenceIsEmpty) {
  const std::vector<double> spec(512, 0.0);
  EXPECT_TRUE(find_peaks(spec, 48000.0, 1024, 1e-6).empty());
}

TEST(Spectrum, SpectralDifferenceIsL1Norm) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{0.5, 2.5, 5.0};
  EXPECT_DOUBLE_EQ(spectral_difference(a, b), 0.5 + 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(spectral_difference(a, a), 0.0);
}

TEST(Spectrum, SpectralDifferenceSizeMismatchThrows) {
  const std::vector<double> a(4, 0.0);
  const std::vector<double> b(5, 0.0);
  EXPECT_THROW(spectral_difference(a, b), std::invalid_argument);
}

TEST(Spectrum, BatchMatchesSingleBitwise) {
  // Every lane of the batched helper must equal a solo
  // amplitude_spectrum_into() on that lane's signal, bit for bit —
  // including the zero-padded short-block case the detector uses.
  const double sr = 48000.0;
  const std::size_t fft_size = 1024;
  const auto plan_ptr = PlanCache::global().real_plan(fft_size);
  const RealFftPlan& plan = *plan_ptr;
  ASSERT_TRUE(plan.supports_batch());
  for (std::size_t block_len : {fft_size, std::size_t{600}}) {
    const auto w = make_window(WindowKind::kBlackman, block_len);
    for (std::size_t lanes : {1u, 2u, 3u, 4u}) {
      std::vector<std::vector<double>> signals(lanes);
      std::vector<std::span<const double>> sig_spans(lanes);
      std::vector<std::vector<double>> batch_out(lanes);
      std::vector<std::span<double>> out_spans(lanes);
      for (std::size_t l = 0; l < lanes; ++l) {
        signals[l] = sine(500.0 + 40.0 * static_cast<double>(l), 0.5, sr,
                          block_len, 0.1 * static_cast<double>(l));
        sig_spans[l] = signals[l];
        batch_out[l].resize(plan.bins());
        out_spans[l] = batch_out[l];
      }
      BatchSpectrumWorkspace bws;
      amplitude_spectrum_batch_into(sig_spans, w, plan, bws, out_spans);

      SpectrumWorkspace ws(plan);
      std::vector<double> solo(plan.bins());
      for (std::size_t l = 0; l < lanes; ++l) {
        amplitude_spectrum_into(signals[l], w, plan, ws, solo);
        for (std::size_t k = 0; k < solo.size(); ++k) {
          EXPECT_EQ(batch_out[l][k], solo[k])
              << "block_len=" << block_len << " lanes=" << lanes << " lane "
              << l << " bin " << k;
        }
      }
    }
  }
}

TEST(Spectrum, BatchValidatesArguments) {
  const auto plan_ptr = PlanCache::global().real_plan(256);
  const RealFftPlan& plan = *plan_ptr;
  const auto w = make_window(WindowKind::kHann, 256);
  std::vector<double> sig(256, 0.0);
  std::vector<double> out(plan.bins());
  const std::span<const double> sigs[] = {sig};
  const std::span<double> outs[] = {out};
  BatchSpectrumWorkspace ws;

  // signals/outs length mismatch.
  const std::span<double> two_outs[] = {out, out};
  EXPECT_THROW(amplitude_spectrum_batch_into(
                   sigs, w, plan, ws,
                   std::span<const std::span<double>>(two_outs, 2)),
               std::invalid_argument);
  // Window length mismatch.
  const auto short_w = make_window(WindowKind::kHann, 100);
  EXPECT_THROW(amplitude_spectrum_batch_into(sigs, short_w, plan, ws, outs),
               std::invalid_argument);
  // Non-batchable plan.
  const RealFftPlan odd(300);
  const auto w300 = make_window(WindowKind::kHann, 300);
  std::vector<double> sig300(300, 0.0);
  std::vector<double> out300(odd.bins());
  const std::span<const double> sigs300[] = {sig300};
  const std::span<double> outs300[] = {out300};
  EXPECT_THROW(
      amplitude_spectrum_batch_into(sigs300, w300, odd, ws, outs300),
      std::invalid_argument);
}

TEST(Spectrum, AmplitudeSpectrumDispatchMatchesForcedScalar) {
  // The windowed-FFT-magnitude pipeline end to end under the selected
  // SIMD table vs forced scalar: identical bits.
  const double sr = 48000.0;
  const std::size_t n = 2048;
  const auto s = sine(997.0, 0.7, sr, n);
  const auto w = make_window(WindowKind::kBlackman, n);
  const simd::Isa before = simd::active_isa();
  const auto fast = amplitude_spectrum(s, w);
  simd::set_active_isa_for_testing(simd::Isa::kScalar);
  const auto slow = amplitude_spectrum(s, w);
  simd::set_active_isa_for_testing(before);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t k = 0; k < fast.size(); ++k) {
    EXPECT_EQ(fast[k], slow[k]) << "bin " << k;
  }
}

TEST(Spectrum, FindPeaksDispatchMatchesForcedScalar) {
  // The chunked below-threshold prescan must not change which peaks are
  // found, under any kernel table.
  const double sr = 48000.0;
  const std::size_t n = 4096;
  auto s = sine(1000.0, 0.5, sr, n);
  const auto s2 = sine(2500.0, 0.002, sr, n);
  for (std::size_t i = 0; i < n; ++i) s[i] += s2[i];
  const auto w = make_window(WindowKind::kBlackman, n);
  const auto spec = amplitude_spectrum(s, w);

  const simd::Isa before = simd::active_isa();
  const auto fast = find_peaks(spec, sr, n, 1e-3);
  simd::set_active_isa_for_testing(simd::Isa::kScalar);
  const auto slow = find_peaks(spec, sr, n, 1e-3);
  simd::set_active_isa_for_testing(before);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].bin, slow[i].bin);
    EXPECT_EQ(fast[i].frequency_hz, slow[i].frequency_hz);
    EXPECT_EQ(fast[i].amplitude, slow[i].amplitude);
  }
}

}  // namespace
}  // namespace mdn::dsp
