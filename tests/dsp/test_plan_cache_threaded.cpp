// Concurrent first-touch behaviour of dsp::PlanCache: N threads racing
// to request the same plan size must all receive the same plan pointer,
// and the cache must construct that plan exactly once (counted through
// the constructions_for_testing() hook).  Lives in test_dsp, which is
// THREADED — the tsan CI job runs this under `ctest -L threaded`.
#include "dsp/fft_plan.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace mdn::dsp {
namespace {

TEST(PlanCacheThreaded, ConcurrentFirstTouchBuildsOnce) {
  constexpr int kThreads = 8;
  constexpr std::size_t kSize = 1024;
  PlanCache cache;  // fresh cache: constructions start at zero
  ASSERT_EQ(cache.constructions_for_testing(), 0u);

  std::vector<std::shared_ptr<const FftPlan>> got(kThreads);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1);
      while (!go.load()) {
      }  // spin barrier: maximise first-touch overlap
      got[i] = cache.complex_plan(kSize);
    });
  }
  while (ready.load() < kThreads) {
  }
  go.store(true);
  for (auto& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(got[i], nullptr) << "thread " << i;
    EXPECT_EQ(got[i].get(), got[0].get())
        << "thread " << i << " received a different plan object";
  }
  EXPECT_EQ(cache.constructions_for_testing(), 1u)
      << "racing first-touch requests must construct exactly one plan";
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheThreaded, DistinctKeysCountSeparately) {
  PlanCache cache;
  auto fwd = cache.complex_plan(256, /*inverse=*/false);
  auto inv = cache.complex_plan(256, /*inverse=*/true);
  auto real = cache.real_plan(256);
  EXPECT_NE(fwd.get(), inv.get());
  // RealFftPlan(256) internally builds its own half-size sub-plan, but
  // only cache-level constructions are counted.
  EXPECT_EQ(cache.constructions_for_testing(), 3u);
  // Repeat requests are hits.
  (void)cache.complex_plan(256);
  (void)cache.real_plan(256);
  EXPECT_EQ(cache.constructions_for_testing(), 3u);
}

}  // namespace
}  // namespace mdn::dsp
