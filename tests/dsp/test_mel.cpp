#include "dsp/mel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mdn::dsp {
namespace {

TEST(Mel, KnownAnchors) {
  EXPECT_NEAR(hz_to_mel(0.0), 0.0, 1e-12);
  // The HTK formula puts 1000 Hz at ~999.99 mel.
  EXPECT_NEAR(hz_to_mel(1000.0), 1000.0, 1.0);
}

TEST(Mel, RoundTrip) {
  for (double hz : {20.0, 100.0, 440.0, 1000.0, 4000.0, 12000.0}) {
    EXPECT_NEAR(mel_to_hz(hz_to_mel(hz)), hz, hz * 1e-10);
  }
}

TEST(Mel, MonotonicAndCompressive) {
  EXPECT_LT(hz_to_mel(100.0), hz_to_mel(200.0));
  // Equal Hz steps shrink in mel at higher frequency (log-like axis —
  // the reason the port scan of Fig 4c bends).
  const double low_step = hz_to_mel(200.0) - hz_to_mel(100.0);
  const double high_step = hz_to_mel(10100.0) - hz_to_mel(10000.0);
  EXPECT_GT(low_step, 10.0 * high_step);
}

TEST(MelFilterBank, BandCentersAreEvenlySpacedInMel) {
  MelFilterBank bank(40, 2048, 48000.0, 100.0, 8000.0);
  const double first_gap =
      bank.band_center_mel(1) - bank.band_center_mel(0);
  for (std::size_t b = 2; b < bank.bands(); ++b) {
    EXPECT_NEAR(bank.band_center_mel(b) - bank.band_center_mel(b - 1),
                first_gap, 1e-9);
  }
}

TEST(MelFilterBank, CentersWithinRequestedRange) {
  MelFilterBank bank(32, 2048, 48000.0, 300.0, 6000.0);
  for (std::size_t b = 0; b < bank.bands(); ++b) {
    EXPECT_GT(bank.band_center_hz(b), 300.0);
    EXPECT_LT(bank.band_center_hz(b), 6000.0);
  }
}

TEST(MelFilterBank, ToneEnergyLandsInNearestBand) {
  const std::size_t fft_size = 4096;
  const double sr = 48000.0;
  MelFilterBank bank(64, fft_size, sr, 100.0, 12000.0);

  // Synthetic linear spectrum: one hot bin at 2 kHz.
  std::vector<double> spectrum(fft_size / 2 + 1, 0.0);
  const auto bin = static_cast<std::size_t>(2000.0 * fft_size / sr + 0.5);
  spectrum[bin] = 1.0;

  const auto bands = bank.apply(spectrum);
  const std::size_t hot = static_cast<std::size_t>(
      std::distance(bands.begin(),
                    std::max_element(bands.begin(), bands.end())));
  // The winning band's centre should be close to 2 kHz.
  EXPECT_NEAR(bank.band_center_hz(hot), 2000.0, 250.0);
}

TEST(MelFilterBank, ApplyRejectsWrongSize) {
  MelFilterBank bank(16, 1024, 48000.0, 100.0, 8000.0);
  const std::vector<double> wrong(100, 0.0);
  EXPECT_THROW(bank.apply(wrong), std::invalid_argument);
}

TEST(MelFilterBank, InvalidConfigThrows) {
  EXPECT_THROW(MelFilterBank(0, 1024, 48000.0, 100.0, 8000.0),
               std::invalid_argument);
  EXPECT_THROW(MelFilterBank(16, 1024, 48000.0, 8000.0, 100.0),
               std::invalid_argument);
}

TEST(MelFilterBank, EveryBandHasSupport) {
  // Even narrow low-frequency bands must not be empty (the guarantee that
  // makes low tones visible on the mel spectrograms).
  MelFilterBank bank(80, 2048, 48000.0, 50.0, 16000.0);
  std::vector<double> flat(2048 / 2 + 1, 1.0);
  const auto bands = bank.apply(flat);
  for (std::size_t b = 0; b < bands.size(); ++b) {
    EXPECT_GT(bands[b], 0.0) << "band " << b;
  }
}

TEST(MelSpectrogram, TrackToneAcrossTime) {
  const double sr = 48000.0;
  const std::size_t n = 48000;
  std::vector<double> s(n);
  // First half 500 Hz, second half 4 kHz.
  for (std::size_t i = 0; i < n; ++i) {
    const double f = i < n / 2 ? 500.0 : 4000.0;
    s[i] = std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i) / sr);
  }
  const auto lin = stft(s, sr, {.fft_size = 2048, .hop = 1024});
  const auto mel = mel_spectrogram(lin, 48, 100.0, 8000.0);
  ASSERT_EQ(mel.frames.size(), lin.frames());
  ASSERT_EQ(mel.band_count(), 48u);

  // Early frames peak near 500 Hz, late frames near 4 kHz.
  const std::size_t early = mel.argmax_band(2);
  const std::size_t late = mel.argmax_band(mel.frames.size() - 5);
  EXPECT_NEAR(mel.band_centers_hz[early], 500.0, 150.0);
  EXPECT_NEAR(mel.band_centers_hz[late], 4000.0, 600.0);
}

TEST(MelSpectrogram, AxesSizesConsistent) {
  const std::vector<double> s(8192, 0.1);
  const auto lin = stft(s, 48000.0, {.fft_size = 1024, .hop = 512});
  const auto mel = mel_spectrogram(lin, 24, 100.0, 8000.0);
  EXPECT_EQ(mel.band_centers_hz.size(), 24u);
  EXPECT_EQ(mel.band_centers_mel.size(), 24u);
  EXPECT_EQ(mel.frame_times_s.size(), lin.frames());
}

}  // namespace
}  // namespace mdn::dsp
