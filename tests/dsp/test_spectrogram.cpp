#include "dsp/spectrogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mdn::dsp {
namespace {

std::vector<double> sine(double freq, double amp, double sample_rate,
                         std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = amp * std::sin(2.0 * std::numbers::pi * freq *
                          static_cast<double>(i) / sample_rate);
  }
  return v;
}

TEST(Spectrogram, FrameAndBinCounts) {
  const double sr = 48000.0;
  const auto s = sine(1000.0, 1.0, sr, 48000);  // 1 s
  StftConfig cfg{.fft_size = 1024, .hop = 256};
  const auto sg = stft(s, sr, cfg);
  EXPECT_EQ(sg.bins(), 513u);
  // ceil-ish frame count: (N-1)/hop + 1.
  EXPECT_EQ(sg.frames(), (48000u - 1) / 256 + 1);
}

TEST(Spectrogram, ShortSignalYieldsOnePaddedFrame) {
  // Regression: signals shorter than one hop used to produce 0 frames
  // and the whole recording vanished from the spectrogram.  A non-empty
  // signal always yields at least one (zero-padded) frame.
  const std::vector<double> s(10, 1.0);
  const auto sg = stft(s, 48000.0, {.fft_size = 1024, .hop = 256});
  ASSERT_EQ(sg.frames(), 1u);
  // The padded frame still carries the signal's energy.
  double energy = 0.0;
  for (std::size_t b = 0; b < sg.bins(); ++b) energy += sg.at(0, b);
  EXPECT_GT(energy, 0.0);
}

TEST(Spectrogram, EmptySignalYieldsZeroFrames) {
  const auto sg = stft({}, 48000.0, {.fft_size = 1024, .hop = 256});
  EXPECT_EQ(sg.frames(), 0u);
}

TEST(Spectrogram, FrameCountCoversEverySample) {
  // (N - 1) / hop + 1 frames: the last frame's start offset is within
  // the signal for every non-empty length, including exact multiples.
  for (std::size_t n : {1u, 255u, 256u, 257u, 512u, 1000u}) {
    const std::vector<double> s(n, 1.0);
    const auto sg = stft(s, 48000.0, {.fft_size = 1024, .hop = 256});
    EXPECT_EQ(sg.frames(), (n - 1) / 256 + 1) << "n=" << n;
  }
}

TEST(Spectrogram, InvalidConfigThrows) {
  const std::vector<double> s(1000, 0.0);
  EXPECT_THROW(stft(s, 48000.0, {.fft_size = 0, .hop = 256}),
               std::invalid_argument);
  EXPECT_THROW(stft(s, 48000.0, {.fft_size = 1024, .hop = 0}),
               std::invalid_argument);
}

TEST(Spectrogram, SteadyToneDominatesItsBinInEveryFullFrame) {
  const double sr = 48000.0;
  const auto s = sine(2000.0, 0.8, sr, 24000);
  StftConfig cfg{.fft_size = 1024, .hop = 512};
  const auto sg = stft(s, sr, cfg);
  const std::size_t expected_bin = 2000.0 * 1024.0 / sr + 0.5;
  // Skip trailing frames that are mostly zero padding.
  for (std::size_t f = 0; f + 3 < sg.frames(); ++f) {
    EXPECT_NEAR(static_cast<double>(sg.argmax_bin(f)),
                static_cast<double>(expected_bin), 1.0)
        << "frame " << f;
  }
}

TEST(Spectrogram, ToneBurstLocalisedInTime) {
  const double sr = 48000.0;
  std::vector<double> s(48000, 0.0);  // 1 s of silence
  const auto burst = sine(1500.0, 1.0, sr, 4800);  // 100 ms
  // Place the burst at t = 0.5 s.
  std::copy(burst.begin(), burst.end(), s.begin() + 24000);

  StftConfig cfg{.fft_size = 1024, .hop = 512};
  const auto sg = stft(s, sr, cfg);
  const std::size_t tone_bin = 1500.0 * 1024.0 / sr + 0.5;

  double on_energy = 0.0, off_energy = 0.0;
  for (std::size_t f = 0; f < sg.frames(); ++f) {
    const double t = sg.frame_time(f);
    const double e = sg.at(f, tone_bin);
    if (t > 0.51 && t < 0.59) {
      on_energy += e;
    } else if (t < 0.45 || t > 0.68) {
      off_energy += e;
    }
  }
  EXPECT_GT(on_energy, 100.0 * off_energy);
}

TEST(Spectrogram, FrameTimesAreMonotonic) {
  const auto s = sine(500.0, 1.0, 48000.0, 9600);
  const auto sg = stft(s, 48000.0, {.fft_size = 512, .hop = 128});
  for (std::size_t f = 1; f < sg.frames(); ++f) {
    EXPECT_GT(sg.frame_time(f), sg.frame_time(f - 1));
  }
}

TEST(Spectrogram, BinFrequencyAxis) {
  const auto s = sine(500.0, 1.0, 48000.0, 2048);
  const auto sg = stft(s, 48000.0, {.fft_size = 1024, .hop = 512});
  EXPECT_DOUBLE_EQ(sg.bin_frequency(0), 0.0);
  EXPECT_NEAR(sg.bin_frequency(512), 24000.0, 1e-9);  // Nyquist
}

TEST(Spectrogram, AtThrowsOutOfRange) {
  const auto s = sine(500.0, 1.0, 48000.0, 2048);
  const auto sg = stft(s, 48000.0, {.fft_size = 1024, .hop = 512});
  EXPECT_THROW(sg.at(sg.frames(), 0), std::out_of_range);
  EXPECT_THROW(sg.at(0, sg.bins()), std::out_of_range);
  EXPECT_THROW(sg.frame(sg.frames()), std::out_of_range);
}

TEST(Spectrogram, SilenceIsAllZero) {
  const std::vector<double> s(4096, 0.0);
  const auto sg = stft(s, 48000.0, {.fft_size = 1024, .hop = 512});
  for (std::size_t f = 0; f < sg.frames(); ++f) {
    for (std::size_t b = 0; b < sg.bins(); ++b) {
      EXPECT_DOUBLE_EQ(sg.at(f, b), 0.0);
    }
  }
}

}  // namespace
}  // namespace mdn::dsp
