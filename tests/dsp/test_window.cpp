#include "dsp/window.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mdn::dsp {
namespace {

TEST(Window, RectangularIsAllOnes) {
  const auto w = make_window(WindowKind::kRectangular, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, HannStartsAtZeroPeaksAtCentre) {
  const auto w = make_window(WindowKind::kHann, 64);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);  // periodic form: peak at N/2
}

TEST(Window, HammingEndpointsNonZero) {
  const auto w = make_window(WindowKind::kHamming, 64);
  EXPECT_NEAR(w[0], 0.08, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, BlackmanNearZeroAtEdges) {
  const auto w = make_window(WindowKind::kBlackman, 64);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, PeriodicSymmetryAboutCentre) {
  for (auto kind : {WindowKind::kHann, WindowKind::kHamming,
                    WindowKind::kBlackman}) {
    const auto w = make_window(kind, 128);
    for (std::size_t i = 1; i < 64; ++i) {
      EXPECT_NEAR(w[i], w[128 - i], 1e-12)
          << window_name(kind) << " index " << i;
    }
  }
}

TEST(Window, ValuesBounded) {
  for (auto kind : {WindowKind::kRectangular, WindowKind::kHann,
                    WindowKind::kHamming, WindowKind::kBlackman}) {
    for (double v : make_window(kind, 257)) {
      EXPECT_GE(v, -1e-12);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
  }
}

TEST(Window, CoherentGainMatchesKnownAverages) {
  // Mean of periodic Hann is exactly 0.5, Hamming 0.54, Blackman 0.42.
  const std::size_t n = 1024;
  EXPECT_NEAR(window_coherent_gain(make_window(WindowKind::kHann, n)),
              0.5 * n, 1e-6);
  EXPECT_NEAR(window_coherent_gain(make_window(WindowKind::kHamming, n)),
              0.54 * n, 1e-6);
  EXPECT_NEAR(window_coherent_gain(make_window(WindowKind::kBlackman, n)),
              0.42 * n, 1e-6);
}

TEST(Window, ApplyWindowMultipliesElementwise) {
  std::vector<double> signal(8, 2.0);
  const std::vector<double> window{0.0, 0.5, 1.0, 1.0, 1.0, 1.0, 0.5, 0.0};
  apply_window(signal, window);
  EXPECT_DOUBLE_EQ(signal[0], 0.0);
  EXPECT_DOUBLE_EQ(signal[1], 1.0);
  EXPECT_DOUBLE_EQ(signal[2], 2.0);
}

TEST(Window, ApplyWindowSizeMismatchThrows) {
  std::vector<double> signal(8, 1.0);
  const std::vector<double> window(4, 1.0);
  EXPECT_THROW(apply_window(signal, window), std::invalid_argument);
}

TEST(Window, ZeroLengthIsEmpty) {
  EXPECT_TRUE(make_window(WindowKind::kHann, 0).empty());
}

TEST(Window, NamesAreStable) {
  EXPECT_EQ(window_name(WindowKind::kRectangular), "rectangular");
  EXPECT_EQ(window_name(WindowKind::kHann), "hann");
  EXPECT_EQ(window_name(WindowKind::kHamming), "hamming");
  EXPECT_EQ(window_name(WindowKind::kBlackman), "blackman");
}

}  // namespace
}  // namespace mdn::dsp
