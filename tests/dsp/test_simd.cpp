// SIMD kernel equivalence: every vector kernel must agree bit-for-bit
// with the scalar reference on every finite input — identical
// arithmetic, identical per-element operation order, no reassociation
// (see dsp/simd.h).  Length sweeps deliberately include values that are
// not multiples of any vector width to pin down tail handling, and the
// dispatch machinery itself (runtime selection, test-time forcing, the
// "dsp/simd/dispatch" gauge) is covered at the end.
#include "dsp/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "audio/rng.h"
#include "dsp/fft_plan.h"
#include "obs/metrics.h"

namespace mdn::dsp::simd {
namespace {

std::vector<Isa> available_isas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    if (isa_available(isa)) out.push_back(isa);
  }
  return out;
}

// Not multiples of 2 or 4 past the first few: every kernel's main loop
// AND its scalar tail get exercised.
constexpr std::size_t kLens[] = {0,  1,  2,  3,  4,  5,  6,  7, 8,
                                 9, 11, 15, 16, 17, 31, 33, 64, 67};

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  audio::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-2.0, 2.0);
  return v;
}

std::vector<Complex> random_complex(std::size_t n, std::uint64_t seed) {
  audio::Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) {
    x = Complex{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
  }
  return v;
}

void expect_bits_eq(std::span<const double> got, std::span<const double> want,
                    const char* what, Isa isa) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i])
        << what << " diverged from scalar at [" << i << "] under "
        << isa_name(isa);
  }
}

void expect_bits_eq(std::span<const Complex> got,
                    std::span<const Complex> want, const char* what,
                    Isa isa) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].real(), want[i].real())
        << what << " re diverged at [" << i << "] under " << isa_name(isa);
    EXPECT_EQ(got[i].imag(), want[i].imag())
        << what << " im diverged at [" << i << "] under " << isa_name(isa);
  }
}

TEST(SimdDispatch, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(isa_available(Isa::kScalar));
  EXPECT_STREQ(isa_name(Isa::kScalar), "scalar");
  EXPECT_STREQ(isa_name(Isa::kSse2), "sse2");
  EXPECT_STREQ(isa_name(Isa::kAvx2), "avx2");
  // The startup pick must itself be available.
  EXPECT_TRUE(isa_available(active_isa()));
  EXPECT_EQ(&active_kernels(), &kernels_for(active_isa()));
}

TEST(SimdKernels, MulMatchesScalarBitwise) {
  const Kernels& ref = kernels_for(Isa::kScalar);
  for (Isa isa : available_isas()) {
    const Kernels& k = kernels_for(isa);
    for (std::size_t n : kLens) {
      const auto a = random_doubles(n, 100 + n);
      const auto b = random_doubles(n, 200 + n);
      std::vector<double> want(n), got(n);
      ref.mul(a.data(), b.data(), want.data(), n);
      k.mul(a.data(), b.data(), got.data(), n);
      expect_bits_eq(got, want, "mul", isa);
      // Documented aliasing: out may be a.
      auto inplace = a;
      k.mul(inplace.data(), b.data(), inplace.data(), n);
      expect_bits_eq(inplace, want, "mul (aliased)", isa);
    }
  }
}

TEST(SimdKernels, MagScaleMatchesScalarBitwise) {
  const Kernels& ref = kernels_for(Isa::kScalar);
  for (Isa isa : available_isas()) {
    const Kernels& k = kernels_for(isa);
    for (std::size_t n : kLens) {
      const auto bins = random_complex(n, 300 + n);
      const double scale = 2.0 / 0.42;
      std::vector<double> want(n), got(n);
      ref.mag_scale_aos(bins.data(), scale, want.data(), n);
      k.mag_scale_aos(bins.data(), scale, got.data(), n);
      expect_bits_eq(got, want, "mag_scale_aos", isa);

      const auto re = random_doubles(n, 400 + n);
      const auto im = random_doubles(n, 500 + n);
      ref.mag_scale_soa(re.data(), im.data(), scale, want.data(), n);
      k.mag_scale_soa(re.data(), im.data(), scale, got.data(), n);
      expect_bits_eq(got, want, "mag_scale_soa", isa);
    }
  }
}

TEST(SimdKernels, CmulMatchesScalarBitwise) {
  const Kernels& ref = kernels_for(Isa::kScalar);
  for (Isa isa : available_isas()) {
    const Kernels& k = kernels_for(isa);
    for (std::size_t n : kLens) {
      const auto a = random_complex(n, 600 + n);
      const auto b = random_complex(n, 700 + n);
      std::vector<Complex> want(n), got(n);
      ref.cmul_aos(a.data(), b.data(), want.data(), n);
      k.cmul_aos(a.data(), b.data(), got.data(), n);
      expect_bits_eq(got, want, "cmul_aos", isa);
      auto inplace = a;
      k.cmul_aos(inplace.data(), b.data(), inplace.data(), n);
      expect_bits_eq(inplace, want, "cmul_aos (aliased)", isa);
    }
  }
}

TEST(SimdKernels, ButterflyAosMatchesScalarBitwise) {
  const Kernels& ref = kernels_for(Isa::kScalar);
  for (Isa isa : available_isas()) {
    const Kernels& k = kernels_for(isa);
    for (std::size_t half : kLens) {
      const auto tw = random_complex(half, 800 + half);
      const auto a0 = random_complex(half, 900 + half);
      const auto b0 = random_complex(half, 1000 + half);
      auto wa = a0, wb = b0;
      ref.butterfly_aos(wa.data(), wb.data(), tw.data(), half);
      auto ga = a0, gb = b0;
      k.butterfly_aos(ga.data(), gb.data(), tw.data(), half);
      expect_bits_eq(ga, wa, "butterfly_aos a", isa);
      expect_bits_eq(gb, wb, "butterfly_aos b", isa);
    }
  }
}

TEST(SimdKernels, ButterflySoaMatchesScalarBitwise) {
  const Kernels& ref = kernels_for(Isa::kScalar);
  for (Isa isa : available_isas()) {
    const Kernels& k = kernels_for(isa);
    for (std::size_t half : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                             std::size_t{16}}) {
      for (std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}, std::size_t{4},
                                std::size_t{5}, std::size_t{7}}) {
        const std::size_t n = half * lanes;
        const auto tw = random_complex(half, 1100 + n);
        const auto are0 = random_doubles(n, 1200 + n);
        const auto aim0 = random_doubles(n, 1300 + n);
        const auto bre0 = random_doubles(n, 1400 + n);
        const auto bim0 = random_doubles(n, 1500 + n);
        auto w_are = are0, w_aim = aim0, w_bre = bre0, w_bim = bim0;
        ref.butterfly_soa(w_are.data(), w_aim.data(), w_bre.data(),
                          w_bim.data(), tw.data(), half, lanes);
        auto g_are = are0, g_aim = aim0, g_bre = bre0, g_bim = bim0;
        k.butterfly_soa(g_are.data(), g_aim.data(), g_bre.data(),
                        g_bim.data(), tw.data(), half, lanes);
        expect_bits_eq(g_are, w_are, "butterfly_soa a_re", isa);
        expect_bits_eq(g_aim, w_aim, "butterfly_soa a_im", isa);
        expect_bits_eq(g_bre, w_bre, "butterfly_soa b_re", isa);
        expect_bits_eq(g_bim, w_bim, "butterfly_soa b_im", isa);
      }
    }
  }
}

TEST(SimdKernels, ButterflySoaSingleLaneMatchesAos) {
  // With one lane, SoA rows coincide with the AoS slice — both layouts
  // must produce the same bits (this ties the batched FFT to the solo
  // FFT arithmetic).
  for (Isa isa : available_isas()) {
    const Kernels& k = kernels_for(isa);
    for (std::size_t half : {std::size_t{4}, std::size_t{9},
                             std::size_t{16}}) {
      const auto tw = random_complex(half, 1600 + half);
      const auto a0 = random_complex(half, 1700 + half);
      const auto b0 = random_complex(half, 1800 + half);
      auto aos_a = a0, aos_b = b0;
      k.butterfly_aos(aos_a.data(), aos_b.data(), tw.data(), half);

      std::vector<double> are(half), aim(half), bre(half), bim(half);
      for (std::size_t i = 0; i < half; ++i) {
        are[i] = a0[i].real();
        aim[i] = a0[i].imag();
        bre[i] = b0[i].real();
        bim[i] = b0[i].imag();
      }
      k.butterfly_soa(are.data(), aim.data(), bre.data(), bim.data(),
                      tw.data(), half, 1);
      for (std::size_t i = 0; i < half; ++i) {
        EXPECT_EQ(are[i], aos_a[i].real()) << i << " " << isa_name(isa);
        EXPECT_EQ(aim[i], aos_a[i].imag()) << i << " " << isa_name(isa);
        EXPECT_EQ(bre[i], aos_b[i].real()) << i << " " << isa_name(isa);
        EXPECT_EQ(bim[i], aos_b[i].imag()) << i << " " << isa_name(isa);
      }
    }
  }
}

TEST(SimdKernels, GoertzelIterateMatchesScalarBitwise) {
  const Kernels& ref = kernels_for(Isa::kScalar);
  for (Isa isa : available_isas()) {
    const Kernels& k = kernels_for(isa);
    for (std::size_t nf : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                           std::size_t{3}, std::size_t{4}, std::size_t{5},
                           std::size_t{8}, std::size_t{13}}) {
      for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{64}, std::size_t{240}}) {
        const auto x = random_doubles(n, 1900 + n + nf);
        // Realistic coefficients: 2*cos(w) lies in [-2, 2].
        const auto coeff = random_doubles(nf, 2000 + nf);
        std::vector<double> w1(nf, 0.0), w2(nf, 0.0);
        ref.goertzel_iterate(x.data(), n, coeff.data(), nf, w1.data(),
                             w2.data());
        std::vector<double> g1(nf, 0.0), g2(nf, 0.0);
        k.goertzel_iterate(x.data(), n, coeff.data(), nf, g1.data(),
                           g2.data());
        expect_bits_eq(g1, w1, "goertzel s1", isa);
        expect_bits_eq(g2, w2, "goertzel s2", isa);
      }
    }
  }
}

TEST(SimdKernels, ChunkMaxMatchesScalarBitwise) {
  const Kernels& ref = kernels_for(Isa::kScalar);
  for (Isa isa : available_isas()) {
    const Kernels& k = kernels_for(isa);
    for (std::size_t n : kLens) {
      const auto x = random_doubles(n, 2100 + n);
      EXPECT_EQ(k.chunk_max(x.data(), n), ref.chunk_max(x.data(), n))
          << "chunk_max n=" << n << " under " << isa_name(isa);
    }
    EXPECT_EQ(k.chunk_max(nullptr, 0),
              -std::numeric_limits<double>::infinity());
  }
}

TEST(SimdDispatch, ForcingIsaSwitchesTheActiveTable) {
  const Isa before = active_isa();
  const Isa prev = set_active_isa_for_testing(Isa::kScalar);
  EXPECT_EQ(prev, before);
  EXPECT_EQ(active_isa(), Isa::kScalar);
  EXPECT_EQ(&active_kernels(), &kernels_for(Isa::kScalar));
  set_active_isa_for_testing(before);
  EXPECT_EQ(active_isa(), before);
}

TEST(SimdDispatch, ForcingUnavailableIsaIsANoOp) {
  if (isa_available(Isa::kAvx2)) {
    GTEST_SKIP() << "every ISA available here; nothing to refuse";
  }
  const Isa before = active_isa();
  EXPECT_EQ(set_active_isa_for_testing(Isa::kAvx2), before);
  EXPECT_EQ(active_isa(), before);
}

TEST(SimdDispatch, ExportsTheDispatchGauge) {
  export_dispatch_metrics();
  const auto& gauge = obs::Registry::global().gauge("dsp/simd/dispatch");
  EXPECT_EQ(gauge.value(), static_cast<std::int64_t>(active_isa()));
}

TEST(SimdFft, DispatchMatchesForcedScalarBitwise) {
  // End-to-end: the full planned FFT (pow2 butterflies AND the Bluestein
  // chirp-z path) must produce identical bits under the runtime-selected
  // table and under forced scalar.
  const Isa before = active_isa();
  for (std::size_t n : {std::size_t{4}, std::size_t{64}, std::size_t{256},
                        std::size_t{2048}, std::size_t{4096},  // pow2
                        std::size_t{3}, std::size_t{5}, std::size_t{12},
                        std::size_t{100}, std::size_t{1000}}) {  // Bluestein
    const auto in = random_complex(n, 2200 + n);
    const FftPlan plan(n);
    const auto fast = plan.transform(in);
    set_active_isa_for_testing(Isa::kScalar);
    const auto slow = plan.transform(in);
    set_active_isa_for_testing(before);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(fast[i].real(), slow[i].real()) << "n=" << n << " bin " << i;
      EXPECT_EQ(fast[i].imag(), slow[i].imag()) << "n=" << n << " bin " << i;
    }
  }
}

TEST(SimdFft, RealPlanDispatchMatchesForcedScalarBitwise) {
  const Isa before = active_isa();
  for (std::size_t n : {std::size_t{8}, std::size_t{2400},
                        std::size_t{4096}}) {
    const auto in = random_doubles(n, 2300 + n);
    const RealFftPlan plan(n);
    const auto fast = plan.spectrum(in);
    set_active_isa_for_testing(Isa::kScalar);
    const auto slow = plan.spectrum(in);
    set_active_isa_for_testing(before);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].real(), slow[i].real()) << "n=" << n << " bin " << i;
      EXPECT_EQ(fast[i].imag(), slow[i].imag()) << "n=" << n << " bin " << i;
    }
  }
}

}  // namespace
}  // namespace mdn::dsp::simd
