#include "dsp/goertzel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "dsp/fft.h"
#include "dsp/simd.h"

namespace mdn::dsp {
namespace {

std::vector<double> sine(double freq, double amp, double sample_rate,
                         std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = amp * std::sin(2.0 * std::numbers::pi * freq *
                          static_cast<double>(i) / sample_rate);
  }
  return v;
}

TEST(Goertzel, MatchesFftBinPower) {
  const double sr = 48000.0;
  const std::size_t n = 4096;
  const double freq = bin_frequency(200, n, sr);  // exactly on a bin
  const auto s = sine(freq, 0.8, sr, n);

  const auto spectrum = fft_real(s);
  const double fft_power = std::norm(spectrum[200]);
  const double g_power = goertzel_power(s, freq, sr);
  EXPECT_NEAR(g_power / fft_power, 1.0, 1e-6);
}

TEST(Goertzel, OnFrequencyPowerScalesWithN) {
  // |X|^2 for a sine of amplitude A at its own frequency is (A*N/2)^2.
  const double sr = 8000.0;
  const std::size_t n = 800;  // 10 full cycles of 100 Hz
  const auto s = sine(100.0, 1.0, sr, n);
  const double expected = std::pow(static_cast<double>(n) / 2.0, 2);
  EXPECT_NEAR(goertzel_power(s, 100.0, sr) / expected, 1.0, 1e-6);
}

TEST(Goertzel, OffFrequencyPowerIsSmall) {
  const double sr = 48000.0;
  const std::size_t n = 4800;  // 0.1 s
  const auto s = sine(1000.0, 1.0, sr, n);
  const double on = goertzel_power(s, 1000.0, sr);
  // 20 Hz away (the paper's plan spacing) with a 100 ms block: well
  // separated.
  const double off = goertzel_power(s, 1020.0, sr);
  EXPECT_GT(on / off, 100.0);
}

TEST(Goertzel, AmplitudeRecoverable) {
  const double sr = 48000.0;
  const std::size_t n = 4800;
  const double amp = 0.37;
  const auto s = sine(500.0, amp, sr, n);
  const double est =
      2.0 * std::sqrt(goertzel_power(s, 500.0, sr)) / static_cast<double>(n);
  EXPECT_NEAR(est, amp, amp * 0.01);
}

TEST(Goertzel, StreamingEqualsBatch) {
  const double sr = 16000.0;
  const auto s = sine(440.0, 0.5, sr, 1600);
  Goertzel g(440.0, sr);
  for (double x : s) g.push(x);
  EXPECT_DOUBLE_EQ(g.block_power(), goertzel_power(s, 440.0, sr));
  EXPECT_EQ(g.samples_seen(), s.size());
}

TEST(Goertzel, ResetClearsState) {
  Goertzel g(440.0, 16000.0);
  g.push(1.0);
  g.push(-1.0);
  g.reset();
  EXPECT_EQ(g.samples_seen(), 0u);
  EXPECT_DOUBLE_EQ(g.block_power(), 0.0);
}

TEST(Goertzel, SilenceHasZeroPower) {
  const std::vector<double> silence(1000, 0.0);
  EXPECT_DOUBLE_EQ(goertzel_power(silence, 700.0, 48000.0), 0.0);
}

TEST(Goertzel, SumOfTonesSeparable) {
  const double sr = 48000.0;
  const std::size_t n = 9600;  // 200 ms
  auto s = sine(600.0, 0.5, sr, n);
  const auto t = sine(900.0, 0.25, sr, n);
  for (std::size_t i = 0; i < n; ++i) s[i] += t[i];

  const double nd = static_cast<double>(n);
  const double a600 = 2.0 * std::sqrt(goertzel_power(s, 600.0, sr)) / nd;
  const double a900 = 2.0 * std::sqrt(goertzel_power(s, 900.0, sr)) / nd;
  EXPECT_NEAR(a600, 0.5, 0.01);
  EXPECT_NEAR(a900, 0.25, 0.01);
}

TEST(GoertzelBank, MatchesSingleFilterPowers) {
  const double sr = 48000.0;
  const std::size_t n = 4800;
  auto s = sine(600.0, 0.5, sr, n);
  const auto t = sine(900.0, 0.25, sr, n);
  for (std::size_t i = 0; i < n; ++i) s[i] += t[i];

  const std::vector<double> freqs{500.0, 600.0, 900.0, 1200.0};
  const GoertzelBank bank(freqs, sr);
  ASSERT_EQ(bank.size(), freqs.size());

  std::vector<double> powers(bank.size());
  bank.block_powers(s, powers);
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_NEAR(powers[i], goertzel_power(s, freqs[i], sr),
                1e-9 * std::max(1.0, powers[i]))
        << freqs[i] << " Hz";
  }
}

TEST(GoertzelBank, AmplitudesMatchGenerated) {
  const double sr = 48000.0;
  const std::size_t n = 9600;
  auto s = sine(600.0, 0.5, sr, n);
  const auto t = sine(900.0, 0.25, sr, n);
  for (std::size_t i = 0; i < n; ++i) s[i] += t[i];

  const std::vector<double> freqs{600.0, 900.0, 1500.0};
  const GoertzelBank bank(freqs, sr);
  std::vector<double> amps(bank.size());
  bank.block_amplitudes(s, amps);
  EXPECT_NEAR(amps[0], 0.5, 0.01);
  EXPECT_NEAR(amps[1], 0.25, 0.01);
  EXPECT_LT(amps[2], 0.01);
}

TEST(GoertzelBank, EmptyBankAndEmptyBlock) {
  const GoertzelBank empty({}, 48000.0);
  EXPECT_EQ(empty.size(), 0u);
  empty.block_powers({}, {});  // no-op, must not crash

  const std::vector<double> freqs{440.0};
  const GoertzelBank bank(freqs, 48000.0);
  std::vector<double> out(1, -1.0);
  bank.block_powers({}, out);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(GoertzelBank, DispatchMatchesForcedScalarBitwise) {
  // The bank's recurrence runs through the SIMD kernel table; whatever
  // ISA dispatch picked must reproduce the scalar path exactly.  Filter
  // counts straddle the vector widths (2 for sse2, 4 for avx2).
  const double sr = 48000.0;
  const simd::Isa before = simd::active_isa();
  for (std::size_t nf : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                         std::size_t{4}, std::size_t{5}, std::size_t{7},
                         std::size_t{24}}) {
    std::vector<double> freqs(nf);
    for (std::size_t f = 0; f < nf; ++f) {
      freqs[f] = 800.0 + 20.0 * static_cast<double>(f);
    }
    const GoertzelBank bank(freqs, sr);
    const auto block = sine(860.0, 0.4, sr, 2400);
    std::vector<double> fast(nf), slow(nf);
    bank.block_powers(block, fast);
    simd::set_active_isa_for_testing(simd::Isa::kScalar);
    bank.block_powers(block, slow);
    simd::set_active_isa_for_testing(before);
    for (std::size_t f = 0; f < nf; ++f) {
      EXPECT_EQ(fast[f], slow[f]) << "nf=" << nf << " filter " << f;
    }
  }
}

// Parameterised sweep across the frequency plan band: amplitude recovery
// within 2% everywhere.
class GoertzelSweep : public ::testing::TestWithParam<double> {};

TEST_P(GoertzelSweep, RecoversAmplitudeAcrossBand) {
  const double freq = GetParam();
  const double sr = 48000.0;
  const std::size_t n = 4800;
  const auto s = sine(freq, 0.6, sr, n);
  const double est =
      2.0 * std::sqrt(goertzel_power(s, freq, sr)) / static_cast<double>(n);
  EXPECT_NEAR(est, 0.6, 0.012) << freq << " Hz";
}

INSTANTIATE_TEST_SUITE_P(Band, GoertzelSweep,
                         ::testing::Values(100.0, 250.0, 500.0, 700.0,
                                           1000.0, 2000.0, 5000.0, 10000.0,
                                           15000.0, 18000.0));

}  // namespace
}  // namespace mdn::dsp
