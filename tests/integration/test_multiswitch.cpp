// Multi-switch attribution: several switches singing into the same air
// must remain individually identifiable (§3, Fig 2a).
#include <gtest/gtest.h>

#include <map>

#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

namespace mdn {
namespace {

constexpr double kSampleRate = 48000.0;

TEST(MultiSwitch, FiveSimultaneousSwitchesIdentified) {
  // The Fig 2a experiment: five switches play at once; the FFT shows five
  // disjoint peaks attributable via the frequency plan.
  audio::AcousticChannel channel(kSampleRate);
  net::EventLoop loop;
  core::FrequencyPlan plan({.base_hz = 600.0, .spacing_hz = 100.0});

  std::vector<std::unique_ptr<mp::PiSpeakerBridge>> bridges;
  std::vector<core::DeviceId> devices;
  for (int i = 0; i < 5; ++i) {
    devices.push_back(plan.add_device("zodiac-" + std::to_string(i), 1));
    const auto src = channel.add_source("spk-" + std::to_string(i),
                                        0.5 + 0.2 * i);
    bridges.push_back(
        std::make_unique<mp::PiSpeakerBridge>(loop, channel, src, 0));
    mp::MpMessage msg;
    msg.frequency_hz = plan.frequency(devices.back(), 0);
    msg.duration_s = 0.2;
    msg.intensity_db_spl = 80.0;
    bridges.back()->play(msg);
  }
  loop.run();

  core::ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  core::ToneDetector detector(cfg);
  const auto block = channel.render(0.05, 0.1);
  const auto tones = detector.detect(block.samples());

  std::map<core::DeviceId, int> attributed;
  for (const auto& t : tones) {
    const auto hit = plan.identify(t.frequency_hz);
    if (hit) ++attributed[hit->device];
  }
  ASSERT_EQ(attributed.size(), 5u);
  for (const auto dev : devices) EXPECT_EQ(attributed[dev], 1);
}

TEST(MultiSwitch, TwoAppsShareTheAirOnDisjointSets) {
  // §3: "it is possible to support multiple MDN applications
  // simultaneously, as long as each task uses a different set of
  // frequencies."  A queue monitor and a knock listener share one room.
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  core::FrequencyPlan plan({.base_hz = 500.0, .spacing_hz = 100.0});

  auto& s1 = net.add_switch("s1");
  auto& s2 = net.add_switch("s2");
  auto& h1 = net.add_host("h1", net::make_ipv4(10, 0, 0, 1));
  auto& h2 = net.add_host("h2", net::make_ipv4(10, 0, 0, 2));
  net.connect(h1, s1);
  net.connect(s1, s2);
  net.connect(h2, s2);

  const auto dev1 = plan.add_device("s1", 3);  // queue bands
  const auto dev2 = plan.add_device("s2", 3);  // knock tones

  const auto spk1 = channel.add_source("spk1", 0.5);
  const auto spk2 = channel.add_source("spk2", 0.8);
  mp::PiSpeakerBridge b1(net.loop(), channel, spk1, 0);
  mp::PiSpeakerBridge b2(net.loop(), channel, spk2, 0);
  mp::MpEmitter e1(net.loop(), b1, 0);
  mp::MpEmitter e2(net.loop(), b2, 0);

  core::MdnController::Config cfg;
  cfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, cfg);

  std::vector<std::pair<int, std::size_t>> heard;  // (app, symbol)
  for (std::size_t s = 0; s < 3; ++s) {
    controller.watch(plan.frequency(dev1, s),
                     [&heard, s](const core::ToneEvent&) {
                       heard.emplace_back(1, s);
                     });
    controller.watch(plan.frequency(dev2, s),
                     [&heard, s](const core::ToneEvent&) {
                       heard.emplace_back(2, s);
                     });
  }
  controller.start();

  // Interleave emissions from both apps, some simultaneous.
  net.loop().schedule_at(100 * net::kMillisecond, [&] {
    e1.emit(plan.frequency(dev1, 0), 0.08, 75.0);
    e2.emit(plan.frequency(dev2, 2), 0.08, 75.0);
  });
  net.loop().schedule_at(400 * net::kMillisecond, [&] {
    e1.emit(plan.frequency(dev1, 1), 0.08, 75.0);
  });
  net.loop().schedule_at(700 * net::kMillisecond, [&] {
    e2.emit(plan.frequency(dev2, 0), 0.08, 75.0);
    e1.emit(plan.frequency(dev1, 2), 0.08, 75.0);
  });
  net.loop().schedule_at(net::from_seconds(1.2),
                         [&] { controller.stop(); });
  net.loop().run();

  // Every emission heard exactly once, attributed to the right app.
  std::map<std::pair<int, std::size_t>, int> counts;
  for (const auto& h : heard) ++counts[h];
  EXPECT_EQ((counts[{1, 0}]), 1);
  EXPECT_EQ((counts[{1, 1}]), 1);
  EXPECT_EQ((counts[{1, 2}]), 1);
  EXPECT_EQ((counts[{2, 0}]), 1);
  EXPECT_EQ((counts[{2, 2}]), 1);
  EXPECT_EQ((counts[{2, 1}]), 0);  // never emitted
}

TEST(MultiSwitch, SevenSwitchChainTelemetry) {
  // The paper's 7-switch testbed: packets traverse the chain; every
  // switch sings its own frequency; the listener attributes each hop.
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  core::FrequencyPlan plan({.base_hz = 600.0, .spacing_hz = 100.0});

  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  auto switches = net::build_chain(net, 7, &src, &dst);

  std::vector<std::unique_ptr<mp::PiSpeakerBridge>> bridges;
  std::vector<std::unique_ptr<mp::MpEmitter>> emitters;
  std::vector<core::DeviceId> devices;
  for (std::size_t i = 0; i < switches.size(); ++i) {
    devices.push_back(plan.add_device(switches[i]->name(), 1));
    const auto spk = channel.add_source("spk" + std::to_string(i),
                                        0.4 + 0.1 * i);
    bridges.push_back(
        std::make_unique<mp::PiSpeakerBridge>(net.loop(), channel, spk, 0));
    emitters.push_back(std::make_unique<mp::MpEmitter>(
        net.loop(), *bridges.back(), 200 * net::kMillisecond));
    auto* emitter = emitters.back().get();
    const double freq = plan.frequency(devices.back(), 0);
    switches[i]->add_packet_hook(
        [emitter, freq](const net::Packet&, std::size_t) {
          emitter->emit(freq, 0.06, 75.0);
        });
  }

  core::MdnController::Config cfg;
  cfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, cfg);
  std::map<core::DeviceId, int> heard;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const auto dev = devices[i];
    controller.watch(plan.frequency(dev, 0),
                     [&heard, dev](const core::ToneEvent&) { ++heard[dev]; });
  }
  controller.start();

  net.loop().schedule_at(100 * net::kMillisecond, [&] {
    net::Packet p;
    p.flow = {src->ip(), dst->ip(), 40000, 80, net::IpProto::kTcp};
    src->send(p);
  });
  net.loop().schedule_at(net::from_seconds(1.0),
                         [&] { controller.stop(); });
  net.loop().run();

  EXPECT_EQ(dst->rx_packets(), 1u);
  // All 7 hops audible and attributed.
  ASSERT_EQ(heard.size(), 7u);
  for (const auto dev : devices) EXPECT_EQ(heard[dev], 1) << dev;
}

}  // namespace
}  // namespace mdn
