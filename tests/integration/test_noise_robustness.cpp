// Noise robustness: the paper's detectors keep working with a pop song
// playing (Fig 4b/4d) and in a loud machine room (§3, §7).
#include <gtest/gtest.h>

#include "audio/audio.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

namespace mdn {
namespace {

constexpr double kSampleRate = 48000.0;

struct NoisyRig {
  explicit NoisyRig(double ambient_rms_song = 0.0,
                    double ambient_rms_room = 0.0)
      : channel(kSampleRate), plan({.base_hz = 2000.0, .spacing_hz = 20.0}) {
    if (ambient_rms_song > 0.0) {
      // The Cheap-Thrills stand-in, looping.
      audio::Waveform song =
          audio::generate_song(4.0, kSampleRate, {.amplitude = 1.0});
      song.scale(ambient_rms_song / song.rms());
      channel.add_ambient(std::move(song), true, 0.0);
    }
    if (ambient_rms_room > 0.0) {
      channel.add_ambient(audio::generate_machine_room(
                              12, 4.0, kSampleRate, ambient_rms_room, 44),
                          true, 0.0);
    }
    speaker = channel.add_source("pi", 0.5);
    bridge = std::make_unique<mp::PiSpeakerBridge>(loop, channel, speaker, 0);
    emitter = std::make_unique<mp::MpEmitter>(loop, *bridge, 0);

    core::MdnController::Config cfg;
    cfg.detector.sample_rate = kSampleRate;
    // Tones are played loud (85 dB) against the noise; raise the floor so
    // song partials and percussion transients do not register as watched
    // tones (the paper's ">= 30 dB above noise" operating point).
    cfg.detector.min_amplitude = 0.05;
    controller = std::make_unique<core::MdnController>(loop, channel, cfg);
  }

  net::EventLoop loop;
  audio::AcousticChannel channel;
  core::FrequencyPlan plan;
  audio::SourceId speaker;
  std::unique_ptr<mp::PiSpeakerBridge> bridge;
  std::unique_ptr<mp::MpEmitter> emitter;
  std::unique_ptr<core::MdnController> controller;
};

TEST(NoiseRobustness, TonesHeardOverTheSong) {
  NoisyRig rig(/*song=*/0.05);  // ~68 dB SPL of music at the mic
  const auto dev = rig.plan.add_device("s1", 5);
  std::vector<std::size_t> heard;
  for (std::size_t s = 0; s < 5; ++s) {
    rig.controller->watch(rig.plan.frequency(dev, s),
                          [&heard, s](const core::ToneEvent&) {
                            heard.push_back(s);
                          });
  }
  rig.controller->start();

  // Five tones at 85 dB, spaced 300 ms.
  for (std::size_t s = 0; s < 5; ++s) {
    rig.loop.schedule_at(net::from_seconds(0.2 + 0.3 * s), [&rig, &dev, s] {
      rig.emitter->emit(rig.plan.frequency(dev, s), 0.08, 85.0);
    });
  }
  rig.loop.schedule_at(net::from_seconds(2.2),
                       [&rig] { rig.controller->stop(); });
  rig.loop.run();

  EXPECT_EQ(heard, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(NoiseRobustness, TonesHeardInMachineRoom) {
  NoisyRig rig(/*song=*/0.0, /*room=*/0.1);  // ~74 dB of fan noise
  const auto dev = rig.plan.add_device("s1", 3);
  int heard = 0;
  rig.controller->watch_all(rig.plan.frequencies(dev),
                            [&heard](const core::ToneEvent&) { ++heard; });
  rig.controller->start();

  for (int i = 0; i < 3; ++i) {
    rig.loop.schedule_at(net::from_seconds(0.2 + 0.4 * i), [&rig, &dev, i] {
      rig.emitter->emit(rig.plan.frequency(dev, static_cast<std::size_t>(i)),
                        0.08, 85.0);
    });
  }
  rig.loop.schedule_at(net::from_seconds(1.8),
                       [&rig] { rig.controller->stop(); });
  rig.loop.run();
  EXPECT_EQ(heard, 3);
}

TEST(NoiseRobustness, NoiseAloneTriggersNothing) {
  NoisyRig rig(/*song=*/0.05, /*room=*/0.1);
  const auto dev = rig.plan.add_device("s1", 10);
  int heard = 0;
  rig.controller->watch_all(rig.plan.frequencies(dev),
                            [&heard](const core::ToneEvent&) { ++heard; });
  rig.controller->start();
  rig.loop.schedule_at(net::from_seconds(3.0),
                       [&rig] { rig.controller->stop(); });
  rig.loop.run();
  EXPECT_EQ(heard, 0);
}

TEST(NoiseRobustness, QuietTonesDrownUnderLoudMusic) {
  // Negative control: a 50 dB tone under 85 dB music is not detected —
  // the paper's SNR constraint is real.
  NoisyRig rig(/*song=*/0.35);
  const auto dev = rig.plan.add_device("s1", 1);
  int heard = 0;
  rig.controller->watch(rig.plan.frequency(dev, 0),
                        [&heard](const core::ToneEvent&) { ++heard; });
  rig.controller->start();
  rig.loop.schedule_at(net::from_seconds(0.3), [&rig, &dev] {
    rig.emitter->emit(rig.plan.frequency(dev, 0), 0.08, 50.0);
  });
  rig.loop.schedule_at(net::from_seconds(1.0),
                       [&rig] { rig.controller->stop(); });
  rig.loop.run();
  EXPECT_EQ(heard, 0);
}

}  // namespace
}  // namespace mdn
