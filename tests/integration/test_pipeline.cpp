// End-to-end pipeline integration: packet -> firmware hook -> MP wire
// message -> Pi bridge -> speaker -> air -> microphone -> FFT -> onset
// event -> SDN actuation.  Each test exercises the full chain.
#include <gtest/gtest.h>

#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"
#include "sdn/sdn.h"

namespace mdn {
namespace {

constexpr double kSampleRate = 48000.0;

TEST(Pipeline, PacketBecomesToneBecomesEvent) {
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  auto switches = net::build_chain(net, 1, &src, &dst);
  net::Switch& sw = *switches.front();

  core::FrequencyPlan plan;
  const auto dev = plan.add_device("s1", 1);
  const double freq = plan.frequency(dev, 0);

  const auto speaker = channel.add_source("pi", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, speaker,
                             2 * net::kMillisecond);
  mp::MpEmitter emitter(net.loop(), bridge, 0);
  sw.add_packet_hook([&](const net::Packet&, std::size_t) {
    emitter.emit(freq, 0.05, 70.0);
  });

  core::MdnController::Config cfg;
  cfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, cfg);
  std::vector<core::ToneEvent> events;
  controller.watch(freq,
                   [&](const core::ToneEvent& ev) { events.push_back(ev); });
  controller.start();

  net.loop().schedule_at(100 * net::kMillisecond, [&] {
    net::Packet p;
    p.flow = {src->ip(), dst->ip(), 40000, 80, net::IpProto::kTcp};
    src->send(p);
  });
  net.loop().schedule_at(net::from_seconds(0.6),
                         [&] { controller.stop(); });
  net.loop().run();

  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(events[0].time_s, 0.1, 0.07);
  EXPECT_EQ(bridge.played(), 1u);
  EXPECT_EQ(bridge.malformed(), 0u);
  EXPECT_EQ(dst->rx_packets(), 1u);  // data still delivered in-band
}

TEST(Pipeline, ToneEventTriggersFlowModActuation) {
  // Out-of-band control loop: on hearing the tone, the listener installs
  // a drop rule through the SDN channel, killing subsequent traffic.
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  auto switches = net::build_chain(net, 1, &src, &dst);
  net::Switch& sw = *switches.front();

  sdn::Controller null_controller;
  sdn::ControlChannel sdn_channel(net.loop(), net::kMillisecond);
  const auto dpid = sdn_channel.attach(sw, null_controller);

  core::FrequencyPlan plan;
  const auto dev = plan.add_device("s1", 1);
  const double freq = plan.frequency(dev, 0);

  const auto speaker = channel.add_source("pi", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, speaker, 0);
  mp::MpEmitter emitter(net.loop(), bridge,
                        500 * net::kMillisecond);  // one tone only
  sw.add_packet_hook([&](const net::Packet&, std::size_t) {
    emitter.emit(freq, 0.05, 70.0);
  });

  core::MdnController::Config cfg;
  cfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, cfg);
  controller.watch(freq, [&](const core::ToneEvent&) {
    net::FlowEntry e;
    e.priority = 100;
    e.actions = {net::Action::drop()};
    sdn_channel.send_flow_mod(dpid, sdn::FlowMod::add(e));
  });
  controller.start();

  // Steady traffic; the first packet's tone installs the drop rule, so
  // only the first ~100 ms of packets get through.
  net::SourceConfig scfg;
  scfg.flow = {src->ip(), dst->ip(), 40000, 80, net::IpProto::kTcp};
  scfg.start = 0;
  scfg.stop = net::from_seconds(2.0);
  net::CbrSource cbr(*src, scfg, 100.0);
  cbr.start();

  net.loop().schedule_at(net::from_seconds(2.5),
                         [&] { controller.stop(); });
  net.loop().run();

  EXPECT_GT(dst->rx_packets(), 0u);
  EXPECT_LT(dst->rx_packets(), 30u);  // cut off early
  EXPECT_GT(sw.dropped(), 150u);
}

TEST(Pipeline, MalformedWireFramesNeverBecomeSound) {
  net::EventLoop loop;
  audio::AcousticChannel channel(kSampleRate);
  const auto speaker = channel.add_source("pi", 1.0);
  mp::PiSpeakerBridge bridge(loop, channel, speaker, 0);

  // Random garbage, truncations and bit flips.
  audio::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> junk(rng.below(32));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    bridge.on_wire(junk);
  }
  EXPECT_EQ(bridge.played(), 0u);
  EXPECT_EQ(bridge.malformed(), 50u);
  EXPECT_DOUBLE_EQ(channel.render(0.0, 1.0).peak(), 0.0);
}

TEST(Pipeline, ControlPlaneWorksWithoutSdnController) {
  // The paper: "Our approach can be used with and without a Software-
  // Defined Network controller."  Pure passive telemetry — no control
  // channel at all — still hears the switch.
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  auto switches = net::build_chain(net, 1, &src, &dst);

  core::FrequencyPlan plan;
  const auto dev = plan.add_device("s1", 1);
  const auto speaker = channel.add_source("pi", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, speaker, 0);
  mp::MpEmitter emitter(net.loop(), bridge, 0);
  switches[0]->add_packet_hook([&](const net::Packet&, std::size_t) {
    emitter.emit(plan.frequency(dev, 0), 0.05, 70.0);
  });

  core::MdnController::Config cfg;
  cfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, cfg);
  int heard = 0;
  controller.watch(plan.frequency(dev, 0),
                   [&](const core::ToneEvent&) { ++heard; });
  controller.start();

  net.loop().schedule_at(100 * net::kMillisecond, [&] {
    net::Packet p;
    p.flow = {src->ip(), dst->ip(), 40000, 80, net::IpProto::kTcp};
    src->send(p);
  });
  net.loop().schedule_at(net::from_seconds(0.5),
                         [&] { controller.stop(); });
  net.loop().run();
  EXPECT_EQ(heard, 1);
}

}  // namespace
}  // namespace mdn
