// System-wide conservation invariants over a long, busy run: every
// packet and every tone is accounted for.  Catches leaks and
// double-counting that scenario tests (which check outcomes, not
// bookkeeping) would miss.
#include <gtest/gtest.h>

#include "audio/audio.h"
#include "mdn/mdn.h"
#include "mp/mp.h"
#include "net/net.h"

namespace mdn {
namespace {

constexpr double kSampleRate = 48000.0;

TEST(Conservation, PacketsAreNeverCreatedOrDestroyedSilently) {
  // Mixed workload over a bottleneck for 10 simulated seconds.
  net::Network net;
  auto& sw = net.add_switch("s1");
  auto& h1 = net.add_host("h1", net::make_ipv4(10, 0, 0, 1));
  auto& h2 = net.add_host("h2", net::make_ipv4(10, 0, 0, 2));
  net::LinkSpec fast;
  fast.rate_bps = 1e9;
  net::LinkSpec slow;
  slow.rate_bps = 8e6;
  slow.queue_capacity = 50;
  net.connect(h1, sw, fast);
  const std::size_t out = net.connect(h2, sw, slow);
  net::FlowEntry fwd;
  fwd.priority = 1;
  fwd.actions = {net::Action::output(out)};
  sw.flow_table().add(fwd, 0);

  net::SourceConfig cbr_cfg;
  cbr_cfg.flow = {h1.ip(), h2.ip(), 41000, 80, net::IpProto::kTcp};
  cbr_cfg.stop = net::from_seconds(10.0);
  net::CbrSource cbr(h1, cbr_cfg, 800.0);
  cbr.start();

  net::SourceConfig onoff_cfg = cbr_cfg;
  onoff_cfg.flow.dst_port = 81;
  net::OnOffSource onoff(h1, onoff_cfg, 2000.0, 200 * net::kMillisecond,
                         300 * net::kMillisecond, 3);
  onoff.start();

  net.loop().run();

  // Sent == received + dropped at the bottleneck queue (+0 in flight
  // after the loop drains).
  const std::uint64_t sent = h1.tx_packets();
  const std::uint64_t received = h2.rx_packets();
  const std::uint64_t queue_drops = sw.port(out).drops();
  EXPECT_EQ(sent, cbr.sent() + onoff.sent());
  EXPECT_EQ(sent, received + queue_drops);
  EXPECT_EQ(sw.forwarded(), sent);  // everything matched the one rule
  EXPECT_EQ(sw.table_misses(), 0u);
  EXPECT_EQ(sw.port(out).backlog(), 0u);

  // Byte accounting agrees with packet accounting.
  EXPECT_EQ(h2.rx_bytes(), received * 1000);
}

TEST(Conservation, EveryEmittedToneIsPlayedOrPoliced) {
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  core::FrequencyPlan plan({.base_hz = 1000.0, .spacing_hz = 20.0});
  const auto dev = plan.add_device("s1", 8);
  const auto spk = channel.add_source("spk", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk);
  mp::MpEmitter emitter(net.loop(), bridge, 40 * net::kMillisecond);

  audio::Rng rng(9);
  int requests = 0;
  for (int i = 0; i < 200; ++i) {
    const auto t = static_cast<net::SimTime>(rng.below(4'000'000'000ULL));
    net.loop().schedule_at(t, [&, i] {
      ++requests;
      emitter.emit(plan.frequency(dev, static_cast<std::size_t>(i % 8)),
                   0.03, 70.0);
    });
  }
  net.loop().run();

  EXPECT_EQ(requests, 200);
  EXPECT_EQ(emitter.emitted() + emitter.suppressed(), 200u);
  EXPECT_EQ(bridge.played(), emitter.emitted());
  EXPECT_EQ(bridge.malformed(), 0u);
}

TEST(Conservation, OnsetsNeverExceedPlayedTones) {
  // A long listening session: the controller may miss tones (overlaps,
  // noise) but must never invent them.
  net::Network net;
  audio::AcousticChannel channel(kSampleRate);
  core::FrequencyPlan plan({.base_hz = 1000.0, .spacing_hz = 20.0});
  const auto dev = plan.add_device("s1", 4);
  const auto spk = channel.add_source("spk", 0.5);
  mp::PiSpeakerBridge bridge(net.loop(), channel, spk);
  mp::MpEmitter emitter(net.loop(), bridge,
                        150 * net::kMillisecond);

  core::MdnController::Config cfg;
  cfg.detector.sample_rate = kSampleRate;
  core::MdnController controller(net.loop(), channel, cfg);
  std::size_t onsets = 0;
  controller.watch_all(plan.frequencies(dev),
                       [&](const core::ToneEvent&) { ++onsets; });
  controller.start();

  audio::Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    const auto t = static_cast<net::SimTime>(rng.below(9'000'000'000ULL));
    net.loop().schedule_at(t, [&, i] {
      emitter.emit(plan.frequency(dev, static_cast<std::size_t>(i % 4)),
                   0.06, 75.0);
    });
  }
  net.loop().schedule_at(net::from_seconds(10.0),
                         [&] { controller.stop(); });
  net.loop().run();

  EXPECT_LE(onsets, bridge.played());
  // With 150 ms policing the vast majority must be heard.
  EXPECT_GE(onsets, bridge.played() * 8 / 10);
  EXPECT_EQ(controller.event_log().size(), onsets);
}

}  // namespace
}  // namespace mdn
