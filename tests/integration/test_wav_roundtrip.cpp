// End-to-end integrity through the WAV artifact path: detection results
// must survive 16-bit PCM export/import — i.e. the audio files the
// examples write are faithful evidence, and recordings captured on one
// machine can be analysed on another.
#include <gtest/gtest.h>

#include <filesystem>

#include "audio/audio.h"
#include "dsp/dsp.h"
#include "mdn/mdn.h"

namespace mdn {
namespace {

constexpr double kSampleRate = 48000.0;

struct WavRoundTrip : ::testing::Test {
  void SetUp() override {
    dir = std::filesystem::temp_directory_path() / "mdn_wav_roundtrip";
    std::filesystem::create_directories(dir);
  }
  void TearDown() override { std::filesystem::remove_all(dir); }

  std::string path(const char* name) const { return (dir / name).string(); }

  std::filesystem::path dir;
};

TEST_F(WavRoundTrip, ToneEventsSurviveExport) {
  // Synthesise a 3-tone sequence, export, re-import, extract events.
  audio::Waveform rec = audio::make_silence(0.2, kSampleRate);
  for (double freq : {600.0, 800.0, 1000.0}) {
    audio::ToneSpec spec;
    spec.frequency_hz = freq;
    spec.amplitude = 0.3;
    spec.duration_s = 0.1;
    rec.append(audio::make_tone(spec, kSampleRate));
    rec.append_silence(0.2);
  }
  audio::write_wav(path("tones.wav"), rec);
  const audio::Waveform loaded = audio::read_wav(path("tones.wav"));

  core::ToneDetectorConfig cfg;
  cfg.sample_rate = kSampleRate;
  core::ToneDetector det(cfg);
  const std::vector<double> watch{600.0, 800.0, 1000.0};
  const auto original = extract_tone_events(rec, det, watch, 0.05);
  const auto replayed = extract_tone_events(loaded, det, watch, 0.05);

  ASSERT_EQ(original.size(), 3u);
  ASSERT_EQ(replayed.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(replayed[i].frequency_hz, original[i].frequency_hz);
    EXPECT_NEAR(replayed[i].time_s, original[i].time_s, 1e-9);
    EXPECT_NEAR(replayed[i].amplitude, original[i].amplitude, 0.01);
  }
}

TEST_F(WavRoundTrip, FanVerdictSurvivesExport) {
  // Calibrate on live audio, classify from a WAV re-import: the Fig 7
  // verdicts must not flip under 16-bit quantisation.
  const auto room = audio::generate_office(6.0, kSampleRate, 0.02, 31);
  audio::FanSpec fan;
  fan.rpm = 4200.0;
  fan.blades = 7;
  fan.seed = 11;

  const auto record = [&](bool on, double dur, std::uint64_t seed) {
    audio::Waveform mix(kSampleRate,
                        static_cast<std::size_t>(dur * kSampleRate));
    mix.mix_at(room.slice(0, mix.size()), 0);
    if (on) {
      auto spec = fan;
      spec.seed = seed;
      mix.mix_at(audio::generate_fan(spec, dur, kSampleRate), 0);
    }
    return mix;
  };

  core::FanFailureDetector det(kSampleRate);
  det.calibrate(record(true, 4.0, 11));

  audio::write_wav(path("on.wav"), record(true, 0.5, 77));
  audio::write_wav(path("off.wav"), record(false, 0.5, 0));

  EXPECT_FALSE(det.is_failed(audio::read_wav(path("on.wav"))));
  EXPECT_TRUE(det.is_failed(audio::read_wav(path("off.wav"))));
}

TEST_F(WavRoundTrip, MelSpectrogramStableUnderQuantisation) {
  const audio::Waveform song = audio::generate_song(1.0, kSampleRate);
  audio::write_wav(path("song.wav"), song);
  const audio::Waveform loaded = audio::read_wav(path("song.wav"));

  const auto lin_a = dsp::stft(song.samples(), kSampleRate,
                               {.fft_size = 2048, .hop = 1024});
  const auto lin_b = dsp::stft(loaded.samples(), kSampleRate,
                               {.fft_size = 2048, .hop = 1024});
  const auto mel_a = dsp::mel_spectrogram(lin_a, 24, 100.0, 8000.0);
  const auto mel_b = dsp::mel_spectrogram(lin_b, 24, 100.0, 8000.0);
  ASSERT_EQ(mel_a.frames.size(), mel_b.frames.size());
  for (std::size_t f = 0; f < mel_a.frames.size(); f += 7) {
    // The dominant band must be identical frame by frame.
    EXPECT_EQ(mel_a.argmax_band(f), mel_b.argmax_band(f)) << "frame " << f;
  }
}

}  // namespace
}  // namespace mdn
