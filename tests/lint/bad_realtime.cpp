// Seeded-violation fixture for scripts/mdn_lint.py (real-time contract).
//
// This file is NOT part of the build.  It exists so the lint suite can
// prove the linter still *fails* on real violations: a lint run over
// this file must exit non-zero, and the negative ctest entry
// (lint_realtime_fixture_fails) is WILL_FAIL — if the linter ever goes
// blind, that test turns red.
//
// Every construct below is a deliberate violation of the MDN_REALTIME
// contract and must NOT be added to scripts/mdn_lint_allowlist.txt.

#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/annotations.h"

namespace mdn::lintfixture {

std::mutex g_mu;
std::vector<int> g_sink;

// Transitive target: the annotated root below reaches this helper, so
// the linter must flag the allocation here even though the helper
// itself carries no annotation.
void helper_that_allocates(int v) {
  g_sink.push_back(v);  // VIOLATION: alloc on a realtime path
}

MDN_REALTIME void bad_hot_path(int v) {
  std::lock_guard<std::mutex> guard(g_mu);  // VIOLATION: lock
  int* leak = new int(v);                   // VIOLATION: new
  helper_that_allocates(*leak);             // VIOLATION: transitive alloc
  std::free(malloc(16));                    // VIOLATION: malloc
}

// Health-estimator-shaped violation: a per-block telemetry update that
// grows a history vector and formats a label on the hot path — the
// pattern obs::MicSignalEstimator must never regress into (it keeps
// fixed-capacity state and publishes scalars via atomics instead).
struct BadEstimator {
  std::vector<double> history;

  MDN_REALTIME void bad_end_block(double noise_floor) {
    history.push_back(noise_floor);         // VIOLATION: unbounded growth
    if (history.size() > 1024) {
      history.resize(512);                  // VIOLATION: resize on hot path
    }
  }
};

}  // namespace mdn::lintfixture
