// Seeded-violation fixture for scripts/mdn_lint.py (real-time contract,
// timeline-sampler shaped).
//
// This file is NOT part of the build.  obs::Timeline::sample is an
// MDN_REALTIME root: it runs inside the event loop's periodic callback
// on the sim hot path, so it must be pure relaxed loads and array
// stores into preallocated rows.  The sampler below regresses into the
// patterns the real one must never adopt — growing the row storage per
// sample, formatting strings, and taking a lock around the ring write.
// A lint run over this file must exit non-zero; the negative ctest
// entry (lint.timeline_fixture_fails) is WILL_FAIL, so if the linter
// ever goes blind this turns red.
//
// Nothing here may be added to scripts/mdn_lint_allowlist.txt.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/annotations.h"

namespace mdn::lintfixture {

struct BadTimeline {
  std::mutex mu;
  std::vector<std::int64_t> times;
  std::vector<double> values;
  std::vector<std::string> labels;

  MDN_REALTIME void bad_sample(std::int64_t sim_ns, double value) {
    std::lock_guard<std::mutex> guard(mu);  // VIOLATION: lock per sample
    times.push_back(sim_ns);                // VIOLATION: unbounded growth
    values.push_back(value);                // VIOLATION: alloc on hot path
    labels.push_back("t=" + std::to_string(sim_ns));  // VIOLATION: format
  }
};

}  // namespace mdn::lintfixture
