// Seeded-violation fixture for scripts/mdn_lint.py (--memory-order).
//
// This file is NOT part of the build.  It exists so the lint suite can
// prove the memory-order audit still *fails* on real violations: a
// `--only memory-order` run over this file must exit non-zero, and the
// negative ctest entry (lint.memory_order_fixture_fails) is WILL_FAIL —
// if the pass ever goes blind, that test turns red.
//
// Every weak order below is a deliberate violation — no `// mo:`
// justification and no allowlist tuple — and must NOT be added to
// scripts/mdn_lint_allowlist.txt.

#include <atomic>
#include <cstdint>

namespace mdn::lintfixture {

std::atomic<std::uint64_t> g_counter{0};
std::atomic<bool> g_flag{false};

// A bare relaxed load with no justification: the exact silent-weak-op
// this pass exists to stop.
inline std::uint64_t sneaky_read() {
  return g_counter.load(std::memory_order_relaxed);
}

// A release store that is neither commented nor allowlisted.
inline void sneaky_publish() {
  g_flag.store(true, std::memory_order_release);
}

// A relaxed RMW; even "obviously fine" counters need the rationale.
inline void sneaky_count() {
  g_counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mdn::lintfixture
