// Seeded-violation fixture for scripts/mdn_lint.py (--lock-order).
//
// This file is NOT part of the build.  It exists so the lint suite can
// prove the lock-order audit still *fails* on real cycles: a
// `--only lock-order` run over this file must exit non-zero, and the
// negative ctest entry (lint.lock_order_fixture_fails) is WILL_FAIL —
// if the pass ever goes blind, that test turns red.
//
// The two functions below acquire the same pair of mutexes in opposite
// orders while holding the first — the classic AB/BA deadlock.  The
// linter must assemble the acquisition graph from the observed
// MutexLock nesting and report the cycle.

#include "common/mutex.h"

namespace mdn::lintfixture {

struct TwoLocks {
  common::Mutex mu_a_;
  common::Mutex mu_b_;
  int value_a_ MDN_GUARDED_BY(mu_a_) = 0;
  int value_b_ MDN_GUARDED_BY(mu_b_) = 0;

  void forward() {
    common::MutexLock a(mu_a_);
    common::MutexLock b(mu_b_);  // edge mu_a_ -> mu_b_
    value_a_ += value_b_;
  }

  void backward() {
    common::MutexLock b(mu_b_);
    common::MutexLock a(mu_a_);  // edge mu_b_ -> mu_a_: cycle!
    value_b_ += value_a_;
  }
};

}  // namespace mdn::lintfixture
