// Seeded-violation fixture for scripts/mdn_lint.py (determinism
// contract).  NOT part of the build — see bad_realtime.cpp for why
// these fixtures exist.  None of these may ever be allowlisted.

#include <chrono>
#include <cstdlib>
#include <string>
#include <unordered_map>

namespace mdn::lintfixture {

int nondeterministic_jitter() {
  return std::rand();  // VIOLATION: rand()
}

long wall_clock_timestamp() {
  // VIOLATION: system_clock in artifact-producing code
  return std::chrono::system_clock::now().time_since_epoch().count();
}

const char* environment_dependent() {
  return std::getenv("MDN_SECRET_TUNING");  // VIOLATION: getenv
}

// VIOLATION: unordered iteration feeding an exporter (hash-layout
// dependent byte order).
std::unordered_map<std::string, double> g_export_me;

}  // namespace mdn::lintfixture
