// Self-test of the mdn::check scheduler: before trusting the checker on
// the runtime's protocols, prove it (a) finds textbook bugs — lost
// updates, relaxed publication — with replayable counterexamples, and
// (b) stays quiet on correctly synchronized versions of the same code.

#include <gtest/gtest.h>

#include "common/atomic.h"
#include "common/check.h"
#include "common/mutex.h"
#include "model_test_util.h"

namespace mdn {
namespace {

TEST(ModelSelftest, CountsInterleavingsOfIndependentStores) {
  // Two threads, two private locations: every interleaving is explored
  // (sleep sets off so the raw count is the combinatorial one).
  check::Options options;
  options.sleep_sets = false;
  long total = 0;
  const check::Result result = check::explore(options, [&] {
    check::Atomic<int> a{0};
    check::Atomic<int> b{0};
    check::thread t1([&] {
      a.store(1, std::memory_order_relaxed);
      a.store(2, std::memory_order_relaxed);
      a.store(3, std::memory_order_relaxed);
    });
    check::thread t2([&] {
      b.store(1, std::memory_order_relaxed);
      b.store(2, std::memory_order_relaxed);
      b.store(3, std::memory_order_relaxed);
    });
    t1.join();
    t2.join();
    ++total;
  });
  EXPECT_TRUE(result.ok) << result.first_failure;
  EXPECT_TRUE(result.complete);
  // 3+3 steps interleave in C(6,3) = 20 ways, but the spawn/join points
  // of the two threads interleave too, so the raw count is larger; what
  // matters is that every counted schedule actually ran the body.
  EXPECT_EQ(result.schedules, total);
  EXPECT_GE(result.schedules, 20);
}

TEST(ModelSelftest, SleepSetsPruneCommutingSchedules) {
  // Same body explored with partial-order reduction: strictly fewer
  // schedules, same verdict (the pruned ones only reorder independent
  // operations).
  const auto body = [] {
    check::Atomic<int> a{0};
    check::Atomic<int> b{0};
    check::thread t1([&] {
      a.store(1, std::memory_order_relaxed);
      a.store(2, std::memory_order_relaxed);
    });
    check::thread t2([&] {
      b.store(1, std::memory_order_relaxed);
      b.store(2, std::memory_order_relaxed);
    });
    t1.join();
    t2.join();
  };
  check::Options raw;
  raw.sleep_sets = false;
  const check::Result full = check::explore(raw, body);
  const check::Result reduced = check::explore(check::Options{}, body);
  EXPECT_TRUE(full.ok);
  EXPECT_TRUE(reduced.ok);
  EXPECT_TRUE(reduced.complete);
  EXPECT_LT(reduced.schedules, full.schedules)
      << "sleep sets pruned nothing on a fully-commuting body";
}

TEST(ModelSelftest, CatchesLostUpdateOnUnsynchronizedCell) {
  // The classic read-modify-write race: two threads increment a plain
  // cell.  The checker must flag the unsynchronized accesses.
  check::Options options;
  const auto body = [] {
    check::Cell<int> counter;
    counter.raw() = 0;
    check::thread t1([&] { counter.write(counter.read() + 1); });
    check::thread t2([&] { counter.write(counter.read() + 1); });
    t1.join();
    t2.join();
  };
  const check::Result result = check::explore(options, body);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.first_failure.find("data race"), std::string::npos)
      << result.first_failure;
  model::expect_caught_and_replayable(options, result, body);
}

TEST(ModelSelftest, MutexMakesTheSameIncrementClean) {
  check::Options options;
  const check::Result result = check::explore(options, [] {
    common::Mutex mu;
    check::Cell<int> counter;
    counter.raw() = 0;
    const auto bump = [&] {
      common::MutexLock lock(mu);
      counter.write(counter.read() + 1);
    };
    check::thread t1(bump);
    check::thread t2(bump);
    t1.join();
    t2.join();
    MDN_CHECK(counter.read() == 2);
  });
  EXPECT_TRUE(result.ok) << result.first_failure;
  EXPECT_TRUE(result.complete);
}

TEST(ModelSelftest, ReleaseAcquirePublicationIsClean) {
  check::Options options;
  const check::Result result = check::explore(options, [] {
    check::Atomic<int> flag{0};
    check::Cell<int> payload;
    check::thread writer([&] {
      payload.write(42);
      flag.store(1, std::memory_order_release);
    });
    check::thread reader([&] {
      if (flag.load(std::memory_order_acquire) == 1) {
        MDN_CHECK(payload.read() == 42);
      }
    });
    writer.join();
    reader.join();
  });
  EXPECT_TRUE(result.ok) << result.first_failure;
  EXPECT_TRUE(result.complete);
}

TEST(ModelSelftest, RelaxedPublicationIsARace) {
  // Identical body, release weakened to relaxed: the reader's payload
  // access no longer happens-after the write, and *some* schedule shows
  // it — exactly the bug class the ring harnesses rely on catching.
  check::Options options;
  const auto body = [] {
    check::Atomic<int> flag{0};
    check::Cell<int> payload;
    check::thread writer([&] {
      payload.write(42);
      flag.store(1, std::memory_order_relaxed);
    });
    check::thread reader([&] {
      if (flag.load(std::memory_order_acquire) == 1) {
        (void)payload.read();
      }
    });
    writer.join();
    reader.join();
  };
  const check::Result result = check::explore(options, body);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.first_failure.find("data race"), std::string::npos)
      << result.first_failure;
  model::expect_caught_and_replayable(options, result, body);
}

TEST(ModelSelftest, DetectsDeadlock) {
  check::Options options;
  const auto body = [] {
    common::Mutex a;
    common::Mutex b;
    check::thread t1([&] {
      a.lock();
      b.lock();
      b.unlock();
      a.unlock();
    });
    check::thread t2([&] {
      b.lock();
      a.lock();
      a.unlock();
      b.unlock();
    });
    t1.join();
    t2.join();
  };
  const check::Result result = check::explore(options, body);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.first_failure.find("deadlock"), std::string::npos)
      << result.first_failure;
}

TEST(ModelSelftest, MdnCheckFailureCarriesATimeline) {
  check::Options options;
  const check::Result result = check::explore(options, [] {
    check::Atomic<int> x{0};
    check::thread t([&] { x.store(1, std::memory_order_relaxed); });
    const int seen = x.load(std::memory_order_relaxed);
    t.join();
    MDN_CHECK(seen == 0);  // fails on schedules where the store won
  });
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.first_failure.find("MDN_CHECK failed"), std::string::npos);
  EXPECT_NE(result.first_failure.find("timeline"), std::string::npos)
      << result.first_failure;
}

TEST(ModelSelftest, PreemptionBoundCapsTheSpace) {
  // With zero preemptions allowed, each thread runs to completion once
  // scheduled: the two-thread body has very few schedules.
  check::Options tight;
  tight.max_preemptions = 0;
  tight.sleep_sets = false;
  const check::Result result = check::explore(tight, [] {
    check::Atomic<int> x{0};
    check::thread t1([&] {
      x.store(1, std::memory_order_relaxed);
      x.store(2, std::memory_order_relaxed);
    });
    check::thread t2([&] {
      x.store(3, std::memory_order_relaxed);
      x.store(4, std::memory_order_relaxed);
    });
    t1.join();
    t2.join();
  });
  EXPECT_TRUE(result.ok) << result.first_failure;
  EXPECT_TRUE(result.complete);
  EXPECT_LE(result.schedules, 16);
}

}  // namespace
}  // namespace mdn
