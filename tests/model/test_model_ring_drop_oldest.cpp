// Model-checked DropOldest reclaim race of rt::RingBuffer: the
// backpressure policy pops the stalest block from the *producer* side
// while the consumer is popping concurrently — the Vyukov per-slot
// sequences must guarantee that every successfully pushed block is
// consumed or reclaimed exactly once (no loss, no duplication), on
// every explored interleaving.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "model_test_util.h"
#include "rt/ring_buffer.h"

namespace mdn {
namespace {

TEST(ModelRingDropOldest, NoBlockLostOrDuplicatedUnderReclaimRace) {
  check::Options options;
  // Raw interleavings (no POR) over a 3-preemption bound: the reclaim
  // race needs at least 2 switches to fire, and the extra headroom
  // clears the kMinSchedules floor without blowing up the DFS.
  options.sleep_sets = false;
  options.max_preemptions = 4;
  const check::Result result = check::explore(options, [] {
    rt::RingBuffer<int> ring(2);
    ring.name_for_model("tail", "head", "slot.seq");
    std::vector<int> pushed;
    std::vector<int> reclaimed;
    std::vector<int> consumed;
    check::thread producer([&] {
      // DropOldest, as stream_runtime drives it: on a full ring pop the
      // stalest entry, then retry once.  Bounded (never spins): a push
      // may simply fail when the consumer holds a slot mid-pop.
      for (int i = 1; i <= 3; ++i) {
        if (ring.try_push(static_cast<int>(i))) {
          pushed.push_back(i);
          continue;
        }
        int victim = -1;
        if (ring.try_pop(victim)) reclaimed.push_back(victim);
        if (ring.try_push(static_cast<int>(i))) pushed.push_back(i);
      }
    });
    // Consumer: bounded concurrent pops, then drain after join.
    for (int attempt = 0; attempt < 2; ++attempt) {
      int v = -1;
      if (ring.try_pop(v)) consumed.push_back(v);
    }
    producer.join();
    for (;;) {
      int v = -1;
      if (!ring.try_pop(v)) break;
      consumed.push_back(v);
    }
    // Conservation: pushed = reclaimed ∪ consumed, as multisets.
    std::vector<int> out = reclaimed;
    out.insert(out.end(), consumed.begin(), consumed.end());
    std::sort(out.begin(), out.end());
    std::vector<int> in = pushed;
    std::sort(in.begin(), in.end());
    MDN_CHECK(out == in);
    // Per-side FIFO: the consumer alone still sees its values in push
    // order (the reclaim may only have removed older ones in between).
    MDN_CHECK(std::is_sorted(consumed.begin(), consumed.end()));
    MDN_CHECK(std::is_sorted(reclaimed.begin(), reclaimed.end()));
    MDN_CHECK(ring.empty());
  });
  model::expect_exhaustive(result);
}

}  // namespace
}  // namespace mdn
