// Model-checked obs::Health alert ring: the hot-path worker queues
// state transitions on a fixed SPSC ring (queue_alert) while the owner
// drains them (Health::poll).  Across every explored interleaving no
// transition is lost (until the ring genuinely overflows), none is
// duplicated, order is preserved, and the PendingAlert payloads are
// never torn — the check::Cell slots catch a missing release/acquire
// edge as a data race.

#include <gtest/gtest.h>

#include <cstdint>

#include "common/check.h"
#include "model_test_util.h"
#include "obs/health.h"

namespace mdn::obs {

/// Befriended by MicSignalEstimator: the harness drives the private
/// alert ring directly, without faking whole detection blocks.
struct HealthModelPeer {
  static void queue(MicSignalEstimator& est, std::uint32_t rule,
                    double value) {
    MicSignalEstimator::PendingAlert alert;
    alert.time_s = value;
    alert.rule = rule;
    alert.from = HealthState::kOk;
    alert.to = HealthState::kDegraded;
    alert.value = value;
    est.queue_alert(alert);
  }
};

}  // namespace mdn::obs

namespace mdn {
namespace {

TEST(ModelHealthAlerts, SpscRingLosesNothingUntilOverflow) {
  check::Options options;
  options.sleep_sets = false;  // count raw interleavings
  options.max_preemptions = 7;
  const check::Result result = check::explore(options, [] {
    obs::HealthConfig config;
    config.alert_capacity = 2;  // small on purpose: overflow is reachable
    obs::Health health(config);
    const std::uint32_t mic = health.add_mic("model-mic");
    obs::MicSignalEstimator& est = health.estimator(mic);
    check::thread worker([&est] {
      for (std::uint32_t rule = 0; rule < 3; ++rule) {
        obs::HealthModelPeer::queue(est, rule, 10.0 * (rule + 1));
      }
    });
    // Owner drains concurrently, then once more after the worker is
    // done — at that point everything queued must have been seen.
    health.poll();
    worker.join();
    health.poll();
    const auto& alerts = health.alerts();
    const std::uint64_t dropped = est.alerts_dropped();
    MDN_CHECK(alerts.size() + dropped == 3);
    // Drain order preserves queue order, payloads intact (rule r was
    // queued with value 10*(r+1)); overflow only ever eats a suffix.
    std::uint32_t expected = 0;
    for (const auto& alert : alerts) {
      MDN_CHECK(alert.rule == expected);
      MDN_CHECK(alert.value == 10.0 * (expected + 1));
      MDN_CHECK(alert.mic == 0);
      ++expected;
    }
  });
  model::expect_exhaustive(result);
}

TEST(ModelHealthAlerts, NoOverflowWhenRingIsLargeEnough) {
  check::Options options;
  options.sleep_sets = false;  // count raw interleavings
  options.max_preemptions = 6;
  const check::Result result = check::explore(options, [] {
    obs::HealthConfig config;
    config.alert_capacity = 4;
    obs::Health health(config);
    const std::uint32_t mic = health.add_mic("model-mic");
    obs::MicSignalEstimator& est = health.estimator(mic);
    check::thread worker([&est] {
      obs::HealthModelPeer::queue(est, 0, 1.0);
      obs::HealthModelPeer::queue(est, 1, 2.0);
      obs::HealthModelPeer::queue(est, 2, 3.0);
    });
    health.poll();
    worker.join();
    health.poll();
    MDN_CHECK(est.alerts_dropped() == 0);
    MDN_CHECK(health.alerts().size() == 3);
    MDN_CHECK(health.alerts()[0].rule == 0);
    MDN_CHECK(health.alerts()[1].rule == 1);
    MDN_CHECK(health.alerts()[2].rule == 2);
  });
  model::expect_exhaustive(result);
}

}  // namespace
}  // namespace mdn
