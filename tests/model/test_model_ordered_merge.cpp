// Model-checked rt::OrderedMerge contract: across every interleaving
// of two shard workers and a draining owner, the watermark is
// monotonic, drained events come out in canonical (seq, mic, watch)
// order with no duplicates, and closing both sources releases
// everything exactly once.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "model_test_util.h"
#include "rt/ordered_merge.h"

namespace mdn {
namespace {

rt::StreamEvent make_event(std::uint64_t seq, std::uint32_t mic) {
  rt::StreamEvent ev;
  ev.seq = seq;
  ev.mic = mic;
  ev.watch = 0;
  ev.time_s = static_cast<double>(seq);
  return ev;
}

TEST(ModelOrderedMerge, WatermarkMonotoneAndCanonicalOrder) {
  check::Options options;
  options.max_preemptions = 2;
  const check::Result result = check::explore(options, [] {
    rt::OrderedMerge merge;
    const std::uint32_t m0 = merge.add_source();
    const std::uint32_t m1 = merge.add_source();
    const auto worker = [&merge](std::uint32_t mic) {
      return [&merge, mic] {
        merge.push(make_event(0, mic));
        merge.advance(mic, 1);
        merge.push(make_event(1, mic));
        merge.advance(mic, 2);
        merge.close(mic);
      };
    };
    check::thread w0(worker(m0));
    check::thread w1(worker(m1));
    // The owner drains concurrently; watermark() must never regress.
    std::vector<rt::StreamEvent> drained;
    std::uint64_t last_mark = 0;
    for (int i = 0; i < 2; ++i) {
      const std::uint64_t mark = merge.watermark();
      MDN_CHECK(mark >= last_mark);
      last_mark = mark;
      merge.drain_ready(drained);
    }
    w0.join();
    w1.join();
    merge.drain_ready(drained);
    // Both sources closed and fully drained: exactly the 4 events, in
    // canonical order, nothing pending.
    MDN_CHECK(drained.size() == 4);
    for (std::size_t i = 1; i < drained.size(); ++i) {
      MDN_CHECK(rt::stream_event_before(drained[i - 1], drained[i]));
    }
    MDN_CHECK(merge.pending() == 0);
    MDN_CHECK(merge.watermark() == UINT64_MAX);
  });
  model::expect_exhaustive(result);
}

}  // namespace
}  // namespace mdn
