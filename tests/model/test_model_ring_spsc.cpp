// Model-checked SPSC contract of rt::RingBuffer: across every explored
// interleaving of one producer and one consumer, values come out in
// FIFO order, exactly once, never torn (the check::Cell payload access
// is race-checked against the seq release/acquire edges).

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "model_test_util.h"
#include "rt/ring_buffer.h"

namespace mdn {
namespace {

TEST(ModelRingSpsc, FifoNoLossNoDuplication) {
  check::Options options;
  // Count every raw interleaving (POR's soundness is pinned by the
  // selftest suite); the default preemption bound keeps this exhaustive
  // yet sub-second while clearing the kMinSchedules floor.
  options.sleep_sets = false;
  const check::Result result = check::explore(options, [] {
    rt::RingBuffer<int> ring(4);
    ring.name_for_model("tail", "head", "slot.seq");
    std::vector<int> got;
    check::thread producer([&] {
      // Capacity 4 ≥ 3 pushes: the ring can never be full, so a failed
      // push is a protocol violation, not backpressure.
      for (int i = 1; i <= 3; ++i) {
        MDN_CHECK(ring.try_push(static_cast<int>(i)));
      }
    });
    // Consumer (the main model thread): bounded attempts while the
    // producer runs — an unbounded spin would livelock the serialized
    // scheduler.
    for (int attempt = 0; attempt < 4; ++attempt) {
      int v = -1;
      if (ring.try_pop(v)) got.push_back(v);
    }
    producer.join();
    // Everything pushed and not yet popped is still in the ring.
    for (;;) {
      int v = -1;
      if (!ring.try_pop(v)) break;
      got.push_back(v);
    }
    MDN_CHECK(got.size() == 3);
    for (int i = 0; i < 3; ++i) MDN_CHECK(got[i] == i + 1);
    MDN_CHECK(ring.empty());
  });
  model::expect_exhaustive(result);
}

TEST(ModelRingSpsc, PopNeverInventsValues) {
  // Pops racing a single push: every successful pop yields exactly the
  // pushed value, and at most one pop succeeds.
  check::Options options;
  options.sleep_sets = false;  // count raw interleavings
  options.max_preemptions = 8;  // tiny body: explore deeper
  const check::Result result = check::explore(options, [] {
    rt::RingBuffer<int> ring(2);
    check::thread producer([&] { MDN_CHECK(ring.try_push(7)); });
    int hits = 0;
    for (int attempt = 0; attempt < 5; ++attempt) {
      int v = -1;
      if (ring.try_pop(v)) {
        MDN_CHECK(v == 7);
        ++hits;
      }
    }
    producer.join();
    int v = -1;
    if (ring.try_pop(v)) {
      MDN_CHECK(v == 7);
      ++hits;
    }
    MDN_CHECK(hits == 1);
  });
  model::expect_exhaustive(result);
}

}  // namespace
}  // namespace mdn
