// WILL_FAIL fixture: runs the seeded-ring-bug body under the model
// checker and exits non-zero (printing the counterexample timeline and
// replay seed) when the bug is caught.  ctest registers this binary
// with WILL_FAIL TRUE — if the checker ever goes blind to the relaxed
// slot publish, this fixture starts passing and the suite goes red.

#ifndef MDN_CHECK_SEEDED_RING_BUG
#error "this fixture must be compiled with MDN_CHECK_SEEDED_RING_BUG"
#endif

#include <cstdio>

#include "common/check.h"
#include "tests/model/seeded_ring_bug_body.h"

int main() {
  using namespace mdn;
  const check::Result result = check::explore(model::seeded_bug_options(),
                                              model::seeded_ring_bug_body);
  if (!result.ok) {
    std::printf("%s\n", result.first_failure.c_str());
    std::printf("schedules explored before the failure: %ld\n",
                result.schedules);
    return 1;
  }
  std::printf("no failure found in %ld schedules (checker is blind!)\n",
              result.schedules);
  return 0;
}
