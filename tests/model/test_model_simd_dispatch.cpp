// Model-checked SIMD dispatch initialization: concurrent first calls to
// active_kernels()/active_isa() race on the lazily-initialized dispatch
// globals.  The init is idempotent by design (every initializer stores
// the same table for this process), so across every interleaving all
// callers must end up on the same kernel table, consistent with the
// reported ISA.

#include <gtest/gtest.h>

#include "common/check.h"
#include "dsp/simd.h"
#include "model_test_util.h"

namespace mdn {
namespace {

TEST(ModelSimdDispatch, ConcurrentLazyInitConverges) {
  check::Options options;
  options.sleep_sets = false;  // read-mostly body: count raw interleavings
  options.max_preemptions = 6;  // read-heavy: cheap to explore deeper
  const check::Result result = check::explore(options, [] {
    dsp::simd::reset_dispatch_for_testing();
    const dsp::simd::Kernels* seen[2] = {nullptr, nullptr};
    dsp::simd::Isa isa[2] = {dsp::simd::Isa::kScalar, dsp::simd::Isa::kScalar};
    const auto reader = [&](int slot) {
      return [&, slot] {
        seen[slot] = &dsp::simd::active_kernels();
        isa[slot] = dsp::simd::active_isa();
        // Second call must be a pure read of the settled state.
        MDN_CHECK(&dsp::simd::active_kernels() == seen[slot]);
      };
    };
    check::thread t0(reader(0));
    check::thread t1(reader(1));
    t0.join();
    t1.join();
    // Both callers converged on one table, and it is the table the
    // final ISA maps to (init is idempotent: last store wins but every
    // store carries the same selection).
    MDN_CHECK(seen[0] == seen[1]);
    MDN_CHECK(seen[0] == &dsp::simd::kernels_for(dsp::simd::active_isa()));
    MDN_CHECK(isa[0] == isa[1]);
  });
  model::expect_exhaustive(result);
}

}  // namespace
}  // namespace mdn
