// The shared producer/consumer body of the seeded-ring-bug fixtures
// (test_model_seeded_bug.cpp and model_seeded_bug_fixture.cpp).  Built
// only with -DMDN_CHECK_SEEDED_RING_BUG, which turns the ring's slot
// release publish into a relaxed store: the consumer's payload read
// then races the producer's payload write on some schedule.
#pragma once

#include "common/check.h"
#include "rt/ring_buffer.h"

namespace mdn::model {

inline void seeded_ring_bug_body() {
  rt::RingBuffer<int> ring(2);
  ring.name_for_model("tail", "head", "slot.seq");
  check::thread producer([&ring] { (void)ring.try_push(7); });
  // A successful pop's payload read must happen-after the producer's
  // payload write; with the relaxed publish the checker's vector clocks
  // can no longer derive that edge and flag the slot access as a race.
  int v = -1;
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (ring.try_pop(v)) MDN_CHECK(v == 7);
  }
  producer.join();
}

inline check::Options seeded_bug_options() {
  check::Options options;
  options.max_preemptions = 3;
  return options;
}

}  // namespace mdn::model
