// Acceptance check for the checker itself: this binary is compiled with
// -DMDN_CHECK_SEEDED_RING_BUG, which relaxes rt::RingBuffer's
// slot-sequence release publish (MDN_RING_PUBLISH_ORDER in
// rt/ring_buffer.h).  The consumer can then claim a slot whose payload
// write is not ordered before its read — the checker must find such a
// schedule, flag the payload race, and hand back a seed that replays
// it deterministically.
//
// The sibling fixture model_seeded_bug_fixture.cpp runs the same body
// and *fails* when the bug fires; ctest registers it WILL_FAIL so CI
// proves the detection with the counterexample in the test log.

#ifndef MDN_CHECK_SEEDED_RING_BUG
#error "this harness must be compiled with MDN_CHECK_SEEDED_RING_BUG"
#endif

#include <gtest/gtest.h>

#include "common/check.h"
#include "model_test_util.h"
#include "tests/model/seeded_ring_bug_body.h"

namespace mdn {
namespace {

TEST(ModelSeededBug, RelaxedSlotPublishIsCaughtWithReplayableTrace) {
  const check::Options options = model::seeded_bug_options();
  const check::Result result =
      check::explore(options, model::seeded_ring_bug_body);
  ASSERT_FALSE(result.ok)
      << "the checker failed to catch the relaxed slot-sequence publish";
  EXPECT_NE(result.first_failure.find("data race"), std::string::npos)
      << result.first_failure;
  EXPECT_NE(result.first_failure.find("slot.seq"), std::string::npos)
      << "counterexample timeline should name the ring locations:\n"
      << result.first_failure;
  model::expect_caught_and_replayable(options, result,
                                      model::seeded_ring_bug_body);
}

}  // namespace
}  // namespace mdn
