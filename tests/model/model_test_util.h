// Shared plumbing for the tests/model/ harnesses (built only under
// -DMDN_MODEL_CHECK; see tests/model/CMakeLists.txt).
//
// Conventions the harnesses follow:
//   * every shared object is constructed INSIDE the explore() body so
//     each schedule starts from a fresh state;
//   * spin loops are bounded (an unbounded retry loop livelocks under
//     the serializing scheduler and trips the step cap);
//   * each harness asserts it explored at least kMinSchedules distinct
//     schedules and that the DFS completed within its bounds — the
//     "exhaustive" in exhaustive-interleaving is itself under test.
#pragma once

#include <gtest/gtest.h>

#include "common/check.h"

namespace mdn::model {

/// Acceptance floor from ISSUE 10: every harness must visit at least
/// this many distinct schedules.
inline constexpr long kMinSchedules = 1000;

/// Asserts a clean, complete, sufficiently-deep exploration.
inline void expect_exhaustive(const check::Result& result) {
  EXPECT_TRUE(result.ok) << result.first_failure;
  EXPECT_EQ(result.failures, 0);
  EXPECT_TRUE(result.complete)
      << "exploration hit a cap before exhausting the space: "
      << result.schedules << " schedules, " << result.pruned << " pruned";
  EXPECT_GE(result.schedules, kMinSchedules)
      << "harness bounds too tight to be meaningful";
}

/// Asserts the exploration found a bug and that its counterexample seed
/// deterministically replays to the same failure.
inline void expect_caught_and_replayable(
    const check::Options& options, const check::Result& result,
    const std::function<void()>& body) {
  ASSERT_FALSE(result.ok) << "the checker missed a seeded bug";
  EXPECT_GE(result.failures, 1);
  ASSERT_FALSE(result.failing_schedule.empty());
  EXPECT_NE(result.first_failure.find("replay seed"), std::string::npos)
      << result.first_failure;

  check::Options replay = options;
  replay.replay = result.failing_schedule;
  const check::Result again = check::explore(replay, body);
  EXPECT_FALSE(again.ok) << "replay seed did not reproduce the failure";
  EXPECT_EQ(again.schedules + again.pruned, 1)
      << "replay must run exactly one schedule";
  EXPECT_EQ(again.first_failure, result.first_failure)
      << "replay reproduced a different failure";
}

}  // namespace mdn::model
