// Workload engine contracts: batched delivery, seeded determinism with
// a golden trace, churn-rate convergence, scan interleaving, and the
// obs counters the telemetry dashboard reads.
#include "net/traffic_gen.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "net/event_loop.h"
#include "net/switch.h"
#include "obs/metrics.h"

namespace mdn::net {
namespace {

struct GenFixture : ::testing::Test {
  EventLoop loop;
  std::vector<std::unique_ptr<Switch>> sinks;
  std::vector<std::uint64_t> received;

  void add_sinks(std::size_t n) {
    received.reserve(n);  // hooks capture element addresses
    for (std::size_t i = 0; i < n; ++i) {
      sinks.push_back(std::make_unique<Switch>(
          loop, "sink" + std::to_string(i)));
      received.push_back(0);
      auto* count = &received.back();
      sinks.back()->add_packet_hook(
          [count](const Packet&, std::size_t) { ++(*count); });
    }
  }

  TrafficGen make_gen(const TrafficGenConfig& cfg) {
    TrafficGen gen(loop, cfg);
    for (auto& sw : sinks) gen.add_target(*sw);
    return gen;
  }
};

TEST_F(GenFixture, DeliversConfiguredAggregateRate) {
  add_sinks(4);
  TrafficGenConfig cfg;
  cfg.population.total_flows = 1024;
  cfg.rate_pps = 2000.0;
  cfg.stop = 2 * kSecond;
  TrafficGen gen = make_gen(cfg);
  gen.start();
  loop.run();
  EXPECT_EQ(gen.packets(), 4000u);
  std::uint64_t total = 0;
  for (std::uint64_t r : received) total += r;
  EXPECT_EQ(total, 4000u);
  for (std::uint64_t r : received) {
    EXPECT_GT(r, 0u) << "every target gets a share of the flow shards";
  }
}

TEST_F(GenFixture, BatchingSchedulesOneEventPerWindow) {
  add_sinks(1);
  TrafficGenConfig cfg;
  cfg.population.total_flows = 64;
  cfg.rate_pps = 10000.0;
  cfg.stop = 1 * kSecond;
  cfg.batch_interval = 10 * kMillisecond;
  TrafficGen gen = make_gen(cfg);
  gen.start();
  const std::uint64_t before =
      obs::Registry::global().counter("net/loop/events_dispatched").value();
  loop.run();
  const std::uint64_t dispatched =
      obs::Registry::global().counter("net/loop/events_dispatched").value() -
      before;
  EXPECT_EQ(gen.batches(), 100u);
  EXPECT_EQ(dispatched, gen.batches())
      << "10K packets must ride on O(batches) loop events, not O(packets)";
  EXPECT_EQ(gen.packets(), 10000u);
}

TEST_F(GenFixture, SameSeedYieldsByteIdenticalGoldenTrace) {
  add_sinks(3);
  TrafficGenConfig cfg;
  cfg.population.total_flows = 256;
  cfg.population.zipf_skew = 1.26;
  cfg.rate_pps = 500.0;
  cfg.churn_fpm = 120.0;
  cfg.stop = 1 * kSecond;
  cfg.seed = 1234;
  cfg.scan_count = 1;
  cfg.scan_pps = 40.0;
  cfg.record_trace = true;

  auto run = [&]() {
    EventLoop l;
    std::vector<std::unique_ptr<Switch>> sw;
    TrafficGen gen(l, cfg);
    for (int i = 0; i < 3; ++i) {
      sw.push_back(std::make_unique<Switch>(l, "s" + std::to_string(i)));
      gen.add_target(*sw.back());
    }
    gen.start();
    l.run();
    return std::pair<std::uint64_t, std::string>(gen.trace_digest(),
                                                 gen.trace_text());
  };

  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second) << "trace text must be byte-identical";
  EXPECT_FALSE(a.second.empty());

  cfg.seed = 1235;
  const auto c = run();
  EXPECT_NE(a.first, c.first) << "different seed, different trace";
}

TEST_F(GenFixture, ChurnConvergesToConfiguredRate) {
  add_sinks(1);
  TrafficGenConfig cfg;
  cfg.population.total_flows = 512;
  cfg.rate_pps = 100.0;
  cfg.churn_fpm = 600.0;  // 10 flows/s
  cfg.stop = 10 * kSecond;
  TrafficGen gen = make_gen(cfg);
  gen.start();
  loop.run();
  // The fractional accumulator makes the long-run rate exact.
  EXPECT_EQ(gen.churn_events(), 100u);
  EXPECT_EQ(gen.population().minted(), 512u + 100u);
}

TEST_F(GenFixture, ScanOverlaySweepsSequentialPortsInterleaved) {
  add_sinks(2);
  TrafficGenConfig cfg;
  cfg.population.total_flows = 128;
  cfg.rate_pps = 2000.0;
  cfg.stop = 1 * kSecond;
  cfg.scan_count = 1;
  cfg.scan_pps = 100.0;
  cfg.record_trace = true;
  TrafficGen gen = make_gen(cfg);
  gen.start();
  loop.run();
  EXPECT_EQ(gen.scan_packets(), 100u);
  ASSERT_EQ(gen.scan_targets().size(), 1u);

  // Walk the trace: scan lines carry the scanner's source ip and must
  // sweep sequential ports, and they must be mixed through the stream
  // (not clumped at batch edges where they would lose every rate-policed
  // emitter slot).
  std::istringstream in(gen.trace_text());
  std::string line;
  std::size_t scan_seen = 0, lines = 0, first_scan_line = 0;
  std::uint16_t expect_port = cfg.scan_first_port;
  char needle[16];
  std::snprintf(needle, sizeof(needle), ":%u", 31337);
  while (std::getline(in, line)) {
    ++lines;
    if (line.find(needle) != std::string::npos) {
      if (scan_seen == 0) first_scan_line = lines;
      ++scan_seen;
      const auto pos = line.rfind(':');
      ASSERT_NE(pos, std::string::npos);
      const int port = std::stoi(line.substr(pos + 1));
      EXPECT_EQ(port, expect_port++) << "scanner sweeps sequential ports";
    }
  }
  EXPECT_EQ(scan_seen, 100u);
  EXPECT_LT(first_scan_line, lines / 2)
      << "scan packets interleave with background, not appended";
}

TEST_F(GenFixture, RegistryCountersTrackTheRun) {
  add_sinks(1);
  auto& reg = obs::Registry::global();
  const std::uint64_t packets0 = reg.counter("net/trafficgen/packets").value();
  const std::uint64_t batches0 = reg.counter("net/trafficgen/batches").value();
  const std::uint64_t churn0 =
      reg.counter("net/trafficgen/churn_events").value();

  TrafficGenConfig cfg;
  cfg.population.total_flows = 2048;
  cfg.rate_pps = 1000.0;
  cfg.churn_fpm = 60.0;
  cfg.stop = 1 * kSecond;
  TrafficGen gen = make_gen(cfg);
  gen.start();
  loop.run();

  EXPECT_EQ(reg.counter("net/trafficgen/packets").value() - packets0,
            gen.packets());
  EXPECT_EQ(reg.counter("net/trafficgen/batches").value() - batches0,
            gen.batches());
  EXPECT_EQ(reg.counter("net/trafficgen/churn_events").value() - churn0,
            gen.churn_events());
  EXPECT_EQ(reg.gauge("net/trafficgen/flows_live").value(), 2048);
}

TEST_F(GenFixture, TargetShardingIsStable) {
  add_sinks(5);
  TrafficGenConfig cfg;
  cfg.population.total_flows = 64;
  TrafficGen gen = make_gen(cfg);
  for (std::size_t r = 0; r < 64; ++r) {
    const FlowKey& f = gen.population().flow_at(r);
    const std::size_t t = gen.target_of(f);
    EXPECT_EQ(gen.target_of(f), t);
    EXPECT_LT(t, 5u);
  }
}

}  // namespace
}  // namespace mdn::net
