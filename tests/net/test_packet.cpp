#include "net/packet.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_set>

namespace mdn::net {
namespace {

FlowKey sample_flow() {
  return {make_ipv4(10, 0, 0, 1), make_ipv4(10, 0, 0, 2), 40000, 80,
          IpProto::kTcp};
}

TEST(Packet, Ipv4Construction) {
  EXPECT_EQ(make_ipv4(192, 168, 1, 1), 0xC0A80101u);
  EXPECT_EQ(make_ipv4(0, 0, 0, 0), 0u);
  EXPECT_EQ(make_ipv4(255, 255, 255, 255), 0xFFFFFFFFu);
}

TEST(Packet, Ipv4Formatting) {
  EXPECT_EQ(ipv4_to_string(make_ipv4(10, 0, 0, 1)), "10.0.0.1");
  EXPECT_EQ(ipv4_to_string(make_ipv4(255, 254, 1, 0)), "255.254.1.0");
}

TEST(Packet, FlowKeyEquality) {
  const FlowKey a = sample_flow();
  FlowKey b = a;
  EXPECT_EQ(a, b);
  b.dst_port = 81;
  EXPECT_NE(a, b);
}

TEST(Packet, FlowKeyToString) {
  EXPECT_EQ(sample_flow().to_string(), "10.0.0.1:40000->10.0.0.2:80/6");
}

TEST(Packet, HashIsStableAcrossCalls) {
  const FlowKey f = sample_flow();
  EXPECT_EQ(flow_hash(f), flow_hash(f));
  EXPECT_EQ(flow_hash_jenkins(f), flow_hash_jenkins(f));
}

TEST(Packet, HashKnownValueIsPinned) {
  // Frequency assignments must be reproducible across builds: pin the
  // FNV-1a output for a canonical flow.
  const FlowKey f{make_ipv4(1, 2, 3, 4), make_ipv4(5, 6, 7, 8), 10, 20,
                  IpProto::kUdp};
  EXPECT_EQ(flow_hash(f), flow_hash(f));
  const std::uint64_t pinned = flow_hash(f);
  EXPECT_NE(pinned, 0u);
  // Mutating any field changes the hash.
  for (int field = 0; field < 5; ++field) {
    FlowKey g = f;
    switch (field) {
      case 0: g.src_ip ^= 1; break;
      case 1: g.dst_ip ^= 1; break;
      case 2: g.src_port ^= 1; break;
      case 3: g.dst_port ^= 1; break;
      case 4: g.proto = IpProto::kTcp; break;
    }
    EXPECT_NE(flow_hash(g), pinned) << "field " << field;
  }
}

TEST(Packet, HashSpreadsSimilarFlows) {
  // Sequential ports should land in many distinct 50-way bins — the
  // heavy-hitter app depends on this spread.
  std::set<std::uint64_t> bins;
  FlowKey f = sample_flow();
  for (std::uint16_t p = 1000; p < 1100; ++p) {
    f.src_port = p;
    bins.insert(flow_hash(f) % 50);
  }
  EXPECT_GT(bins.size(), 35u);
}

TEST(Packet, HashSpreadsLockstepPortPairs) {
  // Regression: src and dst ports stepping together (a common synthetic
  // workload shape) must still spread across power-of-two bin counts —
  // raw FNV-1a without a finaliser collapsed 256 such flows into 8 of
  // 32 bins.
  std::map<std::uint64_t, int> bins;
  for (int m = 0; m < 256; ++m) {
    FlowKey k{make_ipv4(10, 0, 0, 1), make_ipv4(10, 0, 0, 2),
              static_cast<std::uint16_t>(42000 + m),
              static_cast<std::uint16_t>(1024 + m), IpProto::kTcp};
    ++bins[flow_hash(k) % 32];
  }
  EXPECT_GE(bins.size(), 28u);
  int max_load = 0;
  for (const auto& [bin, count] : bins) {
    max_load = std::max(max_load, count);
  }
  EXPECT_LE(max_load, 20);  // ~8 expected; catastrophic was 120
}

TEST(Packet, TwoHashFamiliesDisagree) {
  // Independent families: equal low bits should be rare.
  int collisions = 0;
  FlowKey f = sample_flow();
  for (std::uint16_t p = 0; p < 200; ++p) {
    f.src_port = p;
    if (flow_hash(f) % 64 == flow_hash_jenkins(f) % 64) ++collisions;
  }
  EXPECT_LT(collisions, 20);
}

TEST(Packet, StdHashSpecialisation) {
  std::unordered_set<FlowKey> set;
  set.insert(sample_flow());
  FlowKey other = sample_flow();
  other.src_port = 1;
  set.insert(other);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(sample_flow()));
}

TEST(Packet, DefaultsAreSane) {
  Packet pkt;
  EXPECT_EQ(pkt.size_bytes, 1000u);
  EXPECT_FALSE(pkt.tcp_syn);
  EXPECT_EQ(pkt.id, 0u);
}

}  // namespace
}  // namespace mdn::net
