#include <gtest/gtest.h>

#include "net/network.h"

namespace mdn::net {
namespace {

Packet make_pkt(std::uint32_t src, std::uint32_t dst, std::uint16_t dport) {
  Packet p;
  p.flow = {src, dst, 40000, dport, IpProto::kTcp};
  p.size_bytes = 200;
  return p;
}

struct TwoHostFixture : ::testing::Test {
  void SetUp() override {
    sw = &net.add_switch("s1");
    h1 = &net.add_host("h1", make_ipv4(10, 0, 0, 1));
    h2 = &net.add_host("h2", make_ipv4(10, 0, 0, 2));
    p1 = net.connect(*h1, *sw);
    p2 = net.connect(*h2, *sw);
  }

  Network net;
  Switch* sw = nullptr;
  Host* h1 = nullptr;
  Host* h2 = nullptr;
  std::size_t p1 = 0, p2 = 0;
};

TEST_F(TwoHostFixture, ForwardingViaFlowEntry) {
  FlowEntry e;
  e.priority = 1;
  e.match.dst_ip = h2->ip();
  e.actions = {Action::output(p2)};
  sw->flow_table().add(e, 0);

  h1->send(make_pkt(h1->ip(), h2->ip(), 80));
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), 1u);
  EXPECT_EQ(sw->forwarded(), 1u);
}

TEST_F(TwoHostFixture, TableMissDropsByDefault) {
  h1->send(make_pkt(h1->ip(), h2->ip(), 80));
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), 0u);
  EXPECT_EQ(sw->table_misses(), 1u);
  EXPECT_EQ(sw->dropped(), 1u);
}

TEST_F(TwoHostFixture, MissHandlerInvoked) {
  std::size_t seen_port = 99;
  Packet seen_pkt;
  sw->set_miss_handler([&](const Packet& pkt, std::size_t in_port) {
    seen_pkt = pkt;
    seen_port = in_port;
  });
  h1->send(make_pkt(h1->ip(), h2->ip(), 8080));
  net.loop().run();
  EXPECT_EQ(seen_port, p1);
  EXPECT_EQ(seen_pkt.flow.dst_port, 8080);
}

TEST_F(TwoHostFixture, DropActionCountsDropped) {
  FlowEntry e;
  e.priority = 1;
  e.actions = {Action::drop()};
  sw->flow_table().add(e, 0);
  h1->send(make_pkt(h1->ip(), h2->ip(), 80));
  net.loop().run();
  EXPECT_EQ(sw->dropped(), 1u);
  EXPECT_EQ(h2->rx_packets(), 0u);
}

TEST_F(TwoHostFixture, FloodSkipsIngress) {
  FlowEntry e;
  e.priority = 1;
  e.actions = {Action::flood()};
  sw->flow_table().add(e, 0);
  h1->send(make_pkt(h1->ip(), h2->ip(), 80));
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), 1u);
  EXPECT_EQ(h1->rx_packets(), 0u);  // not reflected
}

TEST_F(TwoHostFixture, GroupActionRoundRobins) {
  // Add a third host to see the split.
  Host& h3 = net.add_host("h3", make_ipv4(10, 0, 0, 3));
  const std::size_t p3 = net.connect(h3, *sw);

  FlowEntry e;
  e.priority = 1;
  e.actions = {Action::group({p2, p3})};
  sw->flow_table().add(e, 0);

  for (int i = 0; i < 10; ++i) {
    h1->send(make_pkt(h1->ip(), h2->ip(), 80));
  }
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), 5u);
  EXPECT_EQ(h3.rx_packets(), 5u);
}

TEST_F(TwoHostFixture, PacketHooksRunInOrder) {
  std::vector<int> order;
  sw->add_packet_hook([&](const Packet&, std::size_t) { order.push_back(1); });
  sw->add_packet_hook([&](const Packet&, std::size_t) { order.push_back(2); });
  h1->send(make_pkt(h1->ip(), h2->ip(), 80));
  net.loop().run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(TwoHostFixture, HookSeesPacketEvenOnMiss) {
  int hook_count = 0;
  sw->add_packet_hook([&](const Packet&, std::size_t) { ++hook_count; });
  h1->send(make_pkt(h1->ip(), h2->ip(), 80));  // miss -> drop
  net.loop().run();
  EXPECT_EQ(hook_count, 1);
}

TEST_F(TwoHostFixture, HostSeriesTracksCumulativeBytes) {
  FlowEntry e;
  e.priority = 1;
  e.actions = {Action::output(p2)};
  sw->flow_table().add(e, 0);

  for (int i = 0; i < 3; ++i) h1->send(make_pkt(h1->ip(), h2->ip(), 80));
  net.loop().run();

  ASSERT_EQ(h1->tx_series().size(), 3u);
  EXPECT_EQ(h1->tx_series().back().bytes, 600u);
  ASSERT_EQ(h2->rx_series().size(), 3u);
  EXPECT_EQ(h2->rx_series().back().bytes, 600u);
  // rx lags tx in time.
  EXPECT_GT(h2->rx_series().front().time, h1->tx_series().front().time);
}

TEST_F(TwoHostFixture, RxHookFires) {
  FlowEntry e;
  e.priority = 1;
  e.actions = {Action::output(p2)};
  sw->flow_table().add(e, 0);
  int got = 0;
  h2->set_rx_hook([&](const Packet&) { ++got; });
  h1->send(make_pkt(h1->ip(), h2->ip(), 80));
  net.loop().run();
  EXPECT_EQ(got, 1);
}

TEST_F(TwoHostFixture, PacketIdsAssignedSequentially) {
  FlowEntry e;
  e.priority = 1;
  e.actions = {Action::output(p2)};
  sw->flow_table().add(e, 0);
  std::vector<std::uint64_t> ids;
  h2->set_rx_hook([&](const Packet& pkt) { ids.push_back(pkt.id); });
  for (int i = 0; i < 3; ++i) h1->send(make_pkt(h1->ip(), h2->ip(), 80));
  net.loop().run();
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Network, FindByName) {
  Network net;
  net.add_switch("alpha");
  net.add_host("beta", make_ipv4(10, 0, 0, 1));
  EXPECT_NE(net.find_switch("alpha"), nullptr);
  EXPECT_EQ(net.find_switch("missing"), nullptr);
  EXPECT_NE(net.find_host("beta"), nullptr);
  EXPECT_EQ(net.find_host("missing"), nullptr);
}

TEST(Network, ChainDeliversEndToEnd) {
  Network net;
  Host* src = nullptr;
  Host* dst = nullptr;
  auto switches = build_chain(net, 3, &src, &dst);
  EXPECT_EQ(switches.size(), 3u);

  Packet p = make_pkt(src->ip(), dst->ip(), 80);
  src->send(p);
  net.loop().run();
  EXPECT_EQ(dst->rx_packets(), 1u);
  for (auto* sw : switches) EXPECT_EQ(sw->forwarded(), 1u);
}

TEST(Network, RhombusSingleAndSplitPaths) {
  Network net;
  auto topo = build_rhombus(net);

  // Single path: everything via the upper branch.
  FlowEntry single;
  single.priority = 10;
  single.actions = {Action::output(topo.entry_upper_port)};
  topo.entry->flow_table().add(single, 0);

  for (int i = 0; i < 6; ++i) {
    topo.src->send(make_pkt(topo.src->ip(), topo.dst->ip(), 80));
  }
  net.loop().run();
  EXPECT_EQ(topo.dst->rx_packets(), 6u);
  EXPECT_EQ(topo.upper->forwarded(), 6u);
  EXPECT_EQ(topo.lower->forwarded(), 0u);

  // Split: group action over both branches beats the single-path rule.
  FlowEntry split;
  split.priority = 20;
  split.actions = {
      Action::group({topo.entry_upper_port, topo.entry_lower_port})};
  topo.entry->flow_table().add(split, net.loop().now());

  for (int i = 0; i < 6; ++i) {
    topo.src->send(make_pkt(topo.src->ip(), topo.dst->ip(), 80));
  }
  net.loop().run();
  EXPECT_EQ(topo.dst->rx_packets(), 12u);
  EXPECT_EQ(topo.lower->forwarded(), 3u);
  EXPECT_EQ(topo.upper->forwarded(), 9u);
}

}  // namespace
}  // namespace mdn::net
