// Property test: FlowTable::lookup agrees with a naive reference model
// over randomly generated tables and packets.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "audio/rng.h"
#include "net/flow_table.h"

namespace mdn::net {
namespace {

struct ReferenceTable {
  // Entries in insertion order.
  std::vector<FlowEntry> entries;

  // Reference semantics: highest priority wins; ties go to the earliest
  // inserted; expired entries (vs `now`) are skipped.
  const FlowEntry* lookup(const Packet& pkt, std::size_t in_port,
                          SimTime now) const {
    const FlowEntry* best = nullptr;
    for (const auto& e : entries) {
      const bool hard_dead =
          e.hard_timeout > 0 && now - e.installed_at >= e.hard_timeout;
      const bool idle_dead =
          e.idle_timeout > 0 && now - e.last_matched >= e.idle_timeout;
      if (hard_dead || idle_dead) continue;
      if (!e.match.matches(pkt, in_port)) continue;
      if (best == nullptr || e.priority > best->priority) best = &e;
    }
    return best;
  }
};

Match random_match(audio::Rng& rng) {
  Match m;
  // Each field wildcarded with probability 1/2; constrained values are
  // drawn from tiny domains so collisions actually happen.
  if (rng.below(2)) m.in_port = rng.below(3);
  if (rng.below(2)) m.src_ip = make_ipv4(10, 0, 0, 1 + rng.below(3) * 1);
  if (rng.below(2)) m.dst_ip = make_ipv4(10, 0, 1, 1 + rng.below(3) * 1);
  if (rng.below(2)) m.src_port = static_cast<std::uint16_t>(rng.below(3));
  if (rng.below(2)) m.dst_port = static_cast<std::uint16_t>(rng.below(3));
  if (rng.below(2)) {
    m.proto = rng.below(2) ? IpProto::kTcp : IpProto::kUdp;
  }
  return m;
}

Packet random_packet(audio::Rng& rng) {
  Packet p;
  p.flow.src_ip = make_ipv4(10, 0, 0, 1 + rng.below(3));
  p.flow.dst_ip = make_ipv4(10, 0, 1, 1 + rng.below(3));
  p.flow.src_port = static_cast<std::uint16_t>(rng.below(3));
  p.flow.dst_port = static_cast<std::uint16_t>(rng.below(3));
  p.flow.proto = rng.below(2) ? IpProto::kTcp : IpProto::kUdp;
  p.size_bytes = 64 + static_cast<std::uint32_t>(rng.below(1400));
  return p;
}

class FlowTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableProperty, LookupMatchesReferenceModel) {
  audio::Rng rng(GetParam());
  FlowTable table;
  ReferenceTable reference;

  const std::size_t n_entries = 5 + rng.below(20);
  for (std::size_t i = 0; i < n_entries; ++i) {
    FlowEntry e;
    e.priority = static_cast<int>(rng.below(5));
    e.match = random_match(rng);
    e.actions = {Action::output(rng.below(3))};
    if (rng.below(4) == 0) e.hard_timeout = 50 + rng.below(100);
    const SimTime installed = static_cast<SimTime>(rng.below(20));
    const auto cookie = table.add(e, installed);
    e.cookie = cookie;
    e.installed_at = installed;
    e.last_matched = installed;
    reference.entries.push_back(e);
  }

  // Probe with packets at increasing times; compare outcome entry
  // identity via (priority, cookie).
  SimTime now = 20;
  for (int probe = 0; probe < 60; ++probe) {
    now += static_cast<SimTime>(rng.below(5));
    const Packet pkt = random_packet(rng);
    const std::size_t in_port = rng.below(3);

    const FlowEntry* expected = reference.lookup(pkt, in_port, now);
    FlowEntry* actual = table.lookup(pkt, in_port, now);

    if (expected == nullptr) {
      EXPECT_EQ(actual, nullptr) << "probe " << probe;
    } else {
      ASSERT_NE(actual, nullptr) << "probe " << probe;
      EXPECT_EQ(actual->cookie, expected->cookie) << "probe " << probe;
      // Keep the reference's idle/"last matched" state in sync.
      for (auto& e : reference.entries) {
        if (e.cookie == expected->cookie) e.last_matched = now;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mdn::net
