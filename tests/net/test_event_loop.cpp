#include "net/event_loop.h"

#include <gtest/gtest.h>

#include <vector>

namespace mdn::net {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.3), 300 * kMillisecond);
  EXPECT_EQ(from_millis(50.0), 50 * kMillisecond);
  EXPECT_DOUBLE_EQ(to_seconds(1500 * kMillisecond), 1.5);
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, EqualTimesRunFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(42, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, ScheduleInIsRelative) {
  EventLoop loop;
  SimTime observed = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_in(50, [&] { observed = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(observed, 150);
}

TEST(EventLoop, PastEventsRunAtCurrentTime) {
  EventLoop loop;
  SimTime observed = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_at(10, [&] { observed = loop.now(); });  // in the past
  });
  loop.run();
  EXPECT_EQ(observed, 100);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const auto id = loop.schedule_at(10, [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, CancelledEventDoesNotBlockOthers) {
  EventLoop loop;
  bool ran = false;
  const auto id = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_TRUE(ran);
}

TEST(EventLoop, RunUntilStopsAtBoundary) {
  EventLoop loop;
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40}) {
    loop.schedule_at(t, [&fired, &loop] { fired.push_back(loop.now()); });
  }
  loop.run_until(25);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(loop.now(), 25);
  EXPECT_EQ(loop.pending(), 2u);
  loop.run_until(100);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(EventLoop, RunUntilIncludesBoundaryEvents) {
  EventLoop loop;
  bool ran = false;
  loop.schedule_at(25, [&] { ran = true; });
  loop.run_until(25);
  EXPECT_TRUE(ran);
}

TEST(EventLoop, RunUntilAdvancesClockWithoutEvents) {
  EventLoop loop;
  loop.run_until(1000);
  EXPECT_EQ(loop.now(), 1000);
}

TEST(EventLoop, PeriodicFiresUntilStopped) {
  EventLoop loop;
  int count = 0;
  loop.schedule_periodic(10, 10, [&] { return ++count < 5; });
  loop.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), 50);
}

TEST(EventLoop, PeriodicFirstDelayIndependentOfPeriod) {
  EventLoop loop;
  std::vector<SimTime> fires;
  loop.schedule_periodic(5, 100, [&] {
    fires.push_back(loop.now());
    return fires.size() < 3;
  });
  loop.run();
  EXPECT_EQ(fires, (std::vector<SimTime>{5, 105, 205}));
}

TEST(EventLoop, NestedSchedulingDuringDispatch) {
  // An event scheduling another event at the same timestamp runs it in
  // the same run() pass.
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) loop.schedule_at(loop.now(), recurse);
  };
  loop.schedule_at(1, recurse);
  loop.run();
  EXPECT_EQ(depth, 100);
}

TEST(EventLoop, PendingCountsLiveEventsOnly) {
  EventLoop loop;
  const auto a = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, ScheduleCancelChurnDoesNotGrowHeap) {
  // Regression: tombstones used to be reclaimed only when popped, so a
  // long-lived loop that schedules and cancels (timeouts, retransmit
  // timers) grew the heap without bound.  cancel() now compacts when
  // tombstones exceed half the heap; 100k churn cycles must stay within
  // a small multiple of the live watermark.
  EventLoop loop;
  // A few long-lived events so compaction always has survivors to keep.
  std::vector<EventLoop::EventId> keep;
  for (int i = 0; i < 8; ++i) {
    keep.push_back(loop.schedule_at(1'000'000 + i, [] {}));
  }
  for (int i = 0; i < 100'000; ++i) {
    const auto id = loop.schedule_at(500'000 + i, [] {});
    loop.cancel(id);
    ASSERT_LE(loop.heap_size(), 2 * loop.pending() + 2)
        << "tombstones accumulating at churn cycle " << i;
  }
  EXPECT_EQ(loop.pending(), keep.size());
  for (const auto id : keep) loop.cancel(id);
  EXPECT_EQ(loop.pending(), 0u);
  loop.run();
  EXPECT_EQ(loop.dispatched(), 0u);
}

TEST(EventLoop, CompactionPreservesOrderAndCancellation) {
  // Force a compaction mid-stream, then check that survivors still fire
  // in (time, id) order and cancelled events stay cancelled.
  EventLoop loop;
  std::vector<int> order;
  std::vector<EventLoop::EventId> doomed;
  for (int i = 0; i < 64; ++i) {
    if (i % 2 == 0) {
      loop.schedule_at(100 + i, [&order, i] { order.push_back(i); });
    } else {
      doomed.push_back(loop.schedule_at(100 + i, [&order, i] {
        order.push_back(-i);
      }));
    }
  }
  for (const auto id : doomed) loop.cancel(id);  // 50% dead -> compacts
  EXPECT_LE(loop.heap_size(), 2 * loop.pending() + 2);
  loop.run();
  ASSERT_EQ(order.size(), 32u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int>(2 * i));
  }
}

}  // namespace
}  // namespace mdn::net
