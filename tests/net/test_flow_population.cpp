// Statistical contracts of the workload engine's flow population: the
// Zipf sampler's rank-frequency slope, uniform-mode flatness, and churn
// bookkeeping.  Tolerances are loose enough for seeded-RNG sampling
// noise but tight enough to catch a broken alias table or a skew knob
// that stopped mattering.
#include "net/flow_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace mdn::net {
namespace {

std::vector<std::uint64_t> sample_histogram(FlowPopulation& pop,
                                            std::mt19937_64& rng,
                                            std::size_t draws) {
  std::vector<std::uint64_t> hits(pop.size(), 0);
  for (std::size_t i = 0; i < draws; ++i) ++hits[pop.sample_rank(rng)];
  return hits;
}

TEST(FlowPopulation, MintsConfiguredSizeWithDistinctKeys) {
  FlowPopulationConfig cfg;
  cfg.total_flows = 4096;
  FlowPopulation pop(cfg);
  EXPECT_EQ(pop.size(), 4096u);
  EXPECT_EQ(pop.minted(), 4096u);
  std::set<std::string> keys;
  for (std::size_t r = 0; r < pop.size(); ++r) {
    keys.insert(pop.flow_at(r).to_string());
  }
  EXPECT_EQ(keys.size(), pop.size()) << "minted 5-tuples must be distinct";
}

TEST(FlowPopulation, UniformModeIsFlat) {
  FlowPopulationConfig cfg;
  cfg.total_flows = 256;
  cfg.zipf_skew = 0.0;
  FlowPopulation pop(cfg);
  std::mt19937_64 rng(7);
  const std::size_t draws = 256 * 400;
  const auto hits = sample_histogram(pop, rng, draws);
  const double expected = static_cast<double>(draws) / 256.0;
  for (std::size_t r = 0; r < hits.size(); ++r) {
    EXPECT_NEAR(static_cast<double>(hits[r]), expected, 0.25 * expected)
        << "rank " << r;
  }
}

TEST(FlowPopulation, WeightsMatchZipfLaw) {
  FlowPopulationConfig cfg;
  cfg.total_flows = 65536;
  cfg.zipf_skew = 1.26;
  FlowPopulation pop(cfg);
  // weight(r) must be proportional to 1/(r+1)^s and normalised.
  double total = 0.0;
  for (std::size_t r = 0; r < pop.size(); ++r) total += pop.weight(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
  const double ratio = pop.weight(0) / pop.weight(9);
  EXPECT_NEAR(ratio, std::pow(10.0, 1.26), 1e-6 * ratio);
}

TEST(FlowPopulation, ZipfSamplerTracksRankFrequencySlope) {
  // At 64K flows, sample and check the empirical log-log slope between
  // well-populated rank deciles against the configured skew.
  FlowPopulationConfig cfg;
  cfg.total_flows = 65536;
  cfg.zipf_skew = 1.26;
  FlowPopulation pop(cfg);
  std::mt19937_64 rng(42);
  const std::size_t draws = 2'000'000;
  const auto hits = sample_histogram(pop, rng, draws);
  // Empirical frequency at rank r should track draws * weight(r) for the
  // popular head where counts are large enough to be statistical.
  for (std::size_t r : {0u, 1u, 3u, 7u, 15u, 31u, 63u}) {
    const double expect = static_cast<double>(draws) * pop.weight(r);
    ASSERT_GT(expect, 500.0);  // head ranks only — enough mass to test
    EXPECT_NEAR(static_cast<double>(hits[r]), expect, 0.15 * expect)
        << "rank " << r;
  }
  // Slope check: log(f(a)/f(b)) / log((b+1)/(a+1)) ≈ skew.
  const double f0 = static_cast<double>(hits[0]);
  const double f63 = static_cast<double>(hits[63]);
  const double slope = std::log(f0 / f63) / std::log(64.0 / 1.0);
  EXPECT_NEAR(slope, 1.26, 0.08);
}

TEST(FlowPopulation, ChurnReplacesKeyNotWeight) {
  FlowPopulationConfig cfg;
  cfg.total_flows = 512;
  cfg.zipf_skew = 1.0;
  FlowPopulation pop(cfg);
  std::mt19937_64 rng(3);
  const double w0_before = pop.weight(0);
  std::set<std::size_t> churned;
  for (int i = 0; i < 200; ++i) {
    const std::size_t rank = pop.churn_one(rng);
    ASSERT_LT(rank, pop.size());
    churned.insert(rank);
  }
  EXPECT_EQ(pop.size(), 512u) << "population size is stationary";
  EXPECT_EQ(pop.minted(), 512u + 200u);
  EXPECT_GT(churned.size(), 100u) << "churn touches many ranks";
  EXPECT_DOUBLE_EQ(pop.weight(0), w0_before)
      << "rank weight survives key replacement";
}

TEST(FlowPopulation, ChurnedKeysAreFresh) {
  FlowPopulationConfig cfg;
  cfg.total_flows = 64;
  FlowPopulation pop(cfg);
  std::mt19937_64 rng(11);
  std::set<std::string> seen;
  for (std::size_t r = 0; r < pop.size(); ++r) {
    seen.insert(pop.flow_at(r).to_string());
  }
  for (int i = 0; i < 64; ++i) {
    const std::size_t rank = pop.churn_one(rng);
    EXPECT_TRUE(seen.insert(pop.flow_at(rank).to_string()).second)
        << "replacement key must not repeat a live or past key";
  }
}

}  // namespace
}  // namespace mdn::net
