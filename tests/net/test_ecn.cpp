// ECN marking and the DCTCP-like rate source (the §6 in-band baseline).
#include "net/ecn.h"

#include <gtest/gtest.h>

#include "net/network.h"
#include "net/traffic.h"

namespace mdn::net {
namespace {

// h1 --fast-- s1 --slow(1000 pps, ECN@30)-- h2, with reverse forwarding
// for the echo path.
struct EcnFixture : ::testing::Test {
  void SetUp() override {
    sw = &net.add_switch("s1");
    h1 = &net.add_host("h1", make_ipv4(10, 0, 0, 1));
    h2 = &net.add_host("h2", make_ipv4(10, 0, 0, 2));
    LinkSpec fast;
    fast.rate_bps = 1e9;
    LinkSpec slow;
    slow.rate_bps = 8e6;
    slow.queue_capacity = 200;
    in = net.connect(*h1, *sw, fast);
    out = net.connect(*h2, *sw, slow);

    FlowEntry fwd;
    fwd.priority = 1;
    fwd.match.dst_ip = h2->ip();
    fwd.actions = {Action::output(out)};
    sw->flow_table().add(fwd, 0);
    FlowEntry back;
    back.priority = 1;
    back.match.dst_ip = h1->ip();
    back.actions = {Action::output(in)};
    sw->flow_table().add(back, 0);

    sw->port(out).set_ecn_threshold(30);
  }

  EcnSourceConfig config(double initial_pps) {
    EcnSourceConfig cfg;
    cfg.flow = {h1->ip(), h2->ip(), 40000, 80, IpProto::kTcp};
    cfg.initial_pps = initial_pps;
    cfg.stop = from_seconds(5.0);
    return cfg;
  }

  Network net;
  Switch* sw = nullptr;
  Host* h1 = nullptr;
  Host* h2 = nullptr;
  std::size_t in = 0, out = 0;
};

TEST_F(EcnFixture, NoMarkingBelowThreshold) {
  // 1 s at 200 pps + additive increase stays under the 1000 pps
  // bottleneck, so the queue never reaches the marking threshold.
  auto cfg = config(200.0);
  cfg.stop = from_seconds(1.0);
  EcnRateSource src(*h1, cfg);
  attach_ecn_echo(*h2);
  src.start();
  net.loop().run();
  EXPECT_EQ(sw->port(out).ecn_marked(), 0u);
  EXPECT_EQ(src.echoes_seen(), 0u);
  EXPECT_LT(src.first_backoff_s(), 0.0);
}

TEST_F(EcnFixture, MarkingStartsPastThreshold) {
  // Non-reactive flood at 2x capacity: the queue passes 30 quickly and
  // ECT packets get CE-marked.
  SourceConfig cfg;
  cfg.flow = {h1->ip(), h2->ip(), 40000, 80, IpProto::kTcp};
  cfg.stop = from_seconds(1.0);
  CbrSource flood(*h1, cfg, 2000.0);
  // CbrSource packets are not ECN-capable: no marks for them.
  flood.start();
  net.loop().run();
  EXPECT_EQ(sw->port(out).ecn_marked(), 0u);

  // The ECN source's own packets do get marked under the same pressure.
  EcnRateSource src(*h1, config(2000.0));
  attach_ecn_echo(*h2);
  src.start();
  net.loop().run();
  EXPECT_GT(sw->port(out).ecn_marked(), 0u);
}

TEST_F(EcnFixture, ReceiverEchoesMarks) {
  EcnRateSource src(*h1, config(2000.0));
  attach_ecn_echo(*h2);
  src.start();
  net.loop().run();
  EXPECT_GT(src.echoes_seen(), 0u);
}

TEST_F(EcnFixture, SourceBacksOffAndStabilises) {
  EcnRateSource src(*h1, config(2000.0));
  attach_ecn_echo(*h2);
  src.start();
  net.loop().run();

  EXPECT_GT(src.first_backoff_s(), 0.0);
  EXPECT_LT(src.first_backoff_s(), 1.0);
  // By the end the rate must be pulled toward the 1000 pps bottleneck.
  EXPECT_LT(src.current_pps(), 1500.0);
  // The queue must not sit pinned at capacity.
  EXPECT_LT(sw->port(out).backlog(), 150u);
  EXPECT_GT(src.alpha(), 0.0);
}

TEST_F(EcnFixture, AdditiveIncreaseWhenUncongested) {
  EcnRateSource src(*h1, config(100.0));
  attach_ecn_echo(*h2);
  src.start();
  net.loop().run_until(from_seconds(2.0));
  // No marks at 100 pps: rate must have grown by ~increase per interval.
  EXPECT_GT(src.current_pps(), 400.0);
}

TEST_F(EcnFixture, RateSeriesRecordsTrajectory) {
  EcnRateSource src(*h1, config(2000.0));
  attach_ecn_echo(*h2);
  src.start();
  net.loop().run();
  ASSERT_GT(src.rate_series().size(), 10u);
  // Rate falls from the initial 2000 at some point.
  double min_rate = 1e18;
  for (const auto& s : src.rate_series()) {
    min_rate = std::min(min_rate, s.pps);
  }
  EXPECT_LT(min_rate, 1500.0);
}

TEST_F(EcnFixture, TwoFlowsShareTheBottleneck) {
  // The §6 aside: "DCTCP has been shown to have greater performance but
  // fairness and convergence drawbacks."  Two DCTCP-like sources from
  // distinct hosts share the 1000 pps bottleneck; both must back off,
  // neither may be starved, and their combined rate must hover near
  // capacity.
  Host& h3 = net.add_host("h3", make_ipv4(10, 0, 0, 3));
  LinkSpec fast;
  fast.rate_bps = 1e9;
  const std::size_t p3 = net.connect(h3, *sw, fast);
  FlowEntry back3;
  back3.priority = 1;
  back3.match.dst_ip = h3.ip();
  back3.actions = {Action::output(p3)};
  sw->flow_table().add(back3, 0);

  EcnSourceConfig cfg_a = config(1200.0);
  cfg_a.stop = from_seconds(10.0);
  EcnSourceConfig cfg_b = cfg_a;
  cfg_b.flow = {h3.ip(), h2->ip(), 41000, 80, IpProto::kTcp};

  EcnRateSource src_a(*h1, cfg_a);
  EcnRateSource src_b(h3, cfg_b);
  attach_ecn_echo(*h2);
  src_a.start();
  src_b.start();
  net.loop().run();

  EXPECT_GT(src_a.first_backoff_s(), 0.0);
  EXPECT_GT(src_b.first_backoff_s(), 0.0);
  const double a = src_a.current_pps();
  const double b = src_b.current_pps();
  // Neither starved...
  EXPECT_GT(a, 100.0);
  EXPECT_GT(b, 100.0);
  // ...and the aggregate sits around the bottleneck (within 60%).
  EXPECT_GT(a + b, 400.0);
  EXPECT_LT(a + b, 1600.0);
}

TEST_F(EcnFixture, InvalidConfigThrows) {
  auto cfg = config(0.0);
  EXPECT_THROW(EcnRateSource(*h1, cfg), std::invalid_argument);
}

TEST_F(EcnFixture, EchoPacketsAreSmallAndMarkedAsAcks) {
  int acks = 0;
  EcnRateSource src(*h1, config(2000.0));
  attach_ecn_echo(*h2);
  // Peek at what comes back to h1 (the source chains its own hook, so
  // count via the switch instead).
  sw->add_packet_hook([&](const Packet& pkt, std::size_t) {
    if (pkt.tcp_ack) {
      ++acks;
      EXPECT_TRUE(pkt.ecn_echo);
      EXPECT_EQ(pkt.size_bytes, 64u);
      EXPECT_EQ(pkt.flow.dst_ip, h1->ip());
    }
  });
  src.start();
  net.loop().run();
  EXPECT_GT(acks, 0);
}

}  // namespace
}  // namespace mdn::net
