#include "net/traffic.h"

#include <gtest/gtest.h>

#include <set>

#include "net/network.h"

namespace mdn::net {
namespace {

// Fixture: h1 -- s1 -- h2 with a forward-everything rule.
struct TrafficFixture : ::testing::Test {
  void SetUp() override {
    sw = &net.add_switch("s1");
    h1 = &net.add_host("h1", make_ipv4(10, 0, 0, 1));
    h2 = &net.add_host("h2", make_ipv4(10, 0, 0, 2));
    LinkSpec fat;
    fat.rate_bps = 1e9;
    net.connect(*h1, *sw, fat);
    const std::size_t out = net.connect(*h2, *sw, fat);
    FlowEntry e;
    e.priority = 1;
    e.actions = {Action::output(out)};
    sw->flow_table().add(e, 0);
  }

  FlowKey flow(std::uint16_t dport = 80) const {
    return {h1->ip(), h2->ip(), 41000, dport, IpProto::kTcp};
  }

  Network net;
  Switch* sw = nullptr;
  Host* h1 = nullptr;
  Host* h2 = nullptr;
};

TEST_F(TrafficFixture, CbrSendsExpectedCount) {
  SourceConfig cfg;
  cfg.flow = flow();
  cfg.start = 0;
  cfg.stop = kSecond;
  CbrSource src(*h1, cfg, 100.0);
  src.start();
  net.loop().run();
  EXPECT_EQ(src.sent(), 100u);
  EXPECT_EQ(h2->rx_packets(), 100u);
}

TEST_F(TrafficFixture, CbrRespectsStartTime) {
  SourceConfig cfg;
  cfg.flow = flow();
  cfg.start = 500 * kMillisecond;
  cfg.stop = kSecond;
  CbrSource src(*h1, cfg, 100.0);
  src.start();
  net.loop().run();
  EXPECT_EQ(src.sent(), 50u);
  EXPECT_GE(h1->tx_series().front().time, 500 * kMillisecond);
}

TEST_F(TrafficFixture, CbrRejectsNonPositiveRate) {
  SourceConfig cfg;
  cfg.flow = flow();
  EXPECT_THROW(CbrSource(*h1, cfg, 0.0), std::invalid_argument);
}

TEST_F(TrafficFixture, RampRateIncreases) {
  SourceConfig cfg;
  cfg.flow = flow();
  cfg.start = 0;
  cfg.stop = 2 * kSecond;
  RampSource src(*h1, cfg, 10.0, 200.0);
  src.start();
  net.loop().run();

  // Inter-send gaps must shrink over time.
  const auto& series = h1->tx_series();
  ASSERT_GT(series.size(), 20u);
  const SimTime early_gap = series[2].time - series[1].time;
  const SimTime late_gap =
      series[series.size() - 1].time - series[series.size() - 2].time;
  EXPECT_LT(late_gap, early_gap / 3);
  // Total roughly integrates the ramp: mean rate ~105 pps over 2 s.
  EXPECT_NEAR(static_cast<double>(src.sent()), 210.0, 25.0);
}

TEST_F(TrafficFixture, RampRateAtEndpoints) {
  SourceConfig cfg;
  cfg.start = kSecond;
  cfg.stop = 3 * kSecond;
  RampSource src(*h1, cfg, 10.0, 110.0);
  EXPECT_DOUBLE_EQ(src.rate_at(0), 10.0);
  EXPECT_DOUBLE_EQ(src.rate_at(2 * kSecond), 60.0);
  EXPECT_DOUBLE_EQ(src.rate_at(5 * kSecond), 110.0);
}

TEST_F(TrafficFixture, FlowMixRespectsWeights) {
  std::vector<FlowMixSource::WeightedFlow> flows;
  flows.push_back({flow(80), 8.0});   // elephant
  flows.push_back({flow(81), 1.0});   // mouse
  flows.push_back({flow(82), 1.0});   // mouse
  FlowMixSource src(*h1, flows, 1000.0, 0, kSecond, /*seed=*/3);
  src.start();
  net.loop().run();

  EXPECT_EQ(src.sent(), 1000u);
  const auto elephant = src.sent_for(flow(80));
  const auto mouse = src.sent_for(flow(81));
  EXPECT_GT(elephant, 700u);
  EXPECT_LT(mouse, 200u);
  EXPECT_EQ(src.sent_for(flow(99)), 0u);  // unknown flow
}

TEST_F(TrafficFixture, FlowMixValidatesInput) {
  EXPECT_THROW(FlowMixSource(*h1, {}, 10.0, 0, kSecond, 1),
               std::invalid_argument);
  std::vector<FlowMixSource::WeightedFlow> zero{{flow(), 0.0}};
  EXPECT_THROW(FlowMixSource(*h1, zero, 10.0, 0, kSecond, 1),
               std::invalid_argument);
}

TEST_F(TrafficFixture, PortScanCoversRangeOnce) {
  std::set<std::uint16_t> seen;
  h2->set_rx_hook(
      [&](const Packet& pkt) { seen.insert(pkt.flow.dst_port); });

  SourceConfig cfg;
  cfg.flow = flow();
  cfg.start = 0;
  cfg.stop = 10 * kSecond;
  PortScanSource scan(*h1, cfg, 20, 59, 10 * kMillisecond);
  scan.start();
  net.loop().run();

  EXPECT_EQ(scan.sent(), 40u);
  EXPECT_EQ(seen.size(), 40u);
  EXPECT_TRUE(seen.contains(20));
  EXPECT_TRUE(seen.contains(59));
}

TEST_F(TrafficFixture, PortScanPacketsAreSyns) {
  bool all_syn = true;
  h2->set_rx_hook([&](const Packet& pkt) { all_syn &= pkt.tcp_syn; });
  SourceConfig cfg;
  cfg.flow = flow();
  PortScanSource scan(*h1, cfg, 1, 5, kMillisecond);
  scan.start();
  net.loop().run();
  EXPECT_TRUE(all_syn);
}

TEST_F(TrafficFixture, PortScanValidatesRange) {
  SourceConfig cfg;
  cfg.flow = flow();
  EXPECT_THROW(PortScanSource(*h1, cfg, 100, 50, kMillisecond),
               std::invalid_argument);
}

TEST_F(TrafficFixture, OnOffAlternatesBursts) {
  SourceConfig cfg;
  cfg.flow = flow();
  cfg.start = 0;
  cfg.stop = 5 * kSecond;
  OnOffSource src(*h1, cfg, 1000.0, 100 * kMillisecond,
                  100 * kMillisecond, 7);
  src.start();
  net.loop().run();

  // ~50% duty cycle at 1000 pps over 5 s -> very roughly 2500 packets.
  EXPECT_GT(src.sent(), 500u);
  EXPECT_LT(src.sent(), 4800u);

  // Gaps should show both ~1 ms (in-burst) and >10 ms (off) intervals.
  const auto& series = h1->tx_series();
  bool has_small = false, has_large = false;
  for (std::size_t i = 1; i < series.size(); ++i) {
    const SimTime gap = series[i].time - series[i - 1].time;
    if (gap <= 2 * kMillisecond) has_small = true;
    if (gap >= 10 * kMillisecond) has_large = true;
  }
  EXPECT_TRUE(has_small);
  EXPECT_TRUE(has_large);
}

TEST_F(TrafficFixture, SourcesStopAtStopTime) {
  SourceConfig cfg;
  cfg.flow = flow();
  cfg.start = 0;
  cfg.stop = 100 * kMillisecond;
  CbrSource src(*h1, cfg, 1000.0);
  src.start();
  net.loop().run();
  EXPECT_LE(net.loop().now(), 200 * kMillisecond);
  EXPECT_NEAR(static_cast<double>(src.sent()), 100.0, 2.0);
}

}  // namespace
}  // namespace mdn::net
