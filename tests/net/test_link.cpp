#include "net/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace mdn::net {
namespace {

// Minimal packet sink node.
class SinkNode : public Node {
 public:
  explicit SinkNode(std::string name) : Node(std::move(name)) {}
  void receive(Packet pkt, std::size_t in_port) override {
    arrivals.push_back({pkt, in_port});
  }
  std::vector<std::pair<Packet, std::size_t>> arrivals;
};

Packet pkt(std::uint32_t bytes) {
  Packet p;
  p.size_bytes = bytes;
  return p;
}

struct LinkFixture : ::testing::Test {
  EventLoop loop;
  SinkNode a{"a"};
  SinkNode b{"b"};
};

TEST_F(LinkFixture, TransmitTimeFollowsRate) {
  Link link(loop, 8e6, 0);  // 8 Mbit/s -> 1 us per byte
  EXPECT_EQ(link.transmit_time(1), 1 * kMicrosecond);
  EXPECT_EQ(link.transmit_time(1000), 1 * kMillisecond);
}

TEST_F(LinkFixture, ZeroRateRejected) {
  EXPECT_THROW(Link(loop, 0.0, 0), std::invalid_argument);
}

TEST_F(LinkFixture, DeliveryLatencyIsTxPlusPropagation) {
  Link link(loop, 8e6, 5 * kMillisecond);
  Port pa(loop, a, 0, 10);
  Port pb(loop, b, 0, 10);
  link.attach(pa, pb);

  pa.send(pkt(1000));  // tx 1 ms + prop 5 ms
  loop.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(loop.now(), 6 * kMillisecond);
}

TEST_F(LinkFixture, BidirectionalDelivery) {
  Link link(loop, 8e6, kMillisecond);
  Port pa(loop, a, 0, 10);
  Port pb(loop, b, 0, 10);
  link.attach(pa, pb);
  pa.send(pkt(100));
  pb.send(pkt(100));
  loop.run();
  EXPECT_EQ(a.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals.size(), 1u);
}

TEST_F(LinkFixture, DoubleAttachThrows) {
  Link link(loop, 8e6, 0);
  Port pa(loop, a, 0, 10);
  Port pb(loop, b, 0, 10);
  link.attach(pa, pb);
  EXPECT_THROW(link.attach(pa, pb), std::logic_error);
}

TEST_F(LinkFixture, SerialisationQueuesBackToBackPackets) {
  Link link(loop, 8e6, 0);  // 1 ms per 1000B packet
  Port pa(loop, a, 0, 10);
  Port pb(loop, b, 0, 10);
  link.attach(pa, pb);

  std::vector<SimTime> arrival_times;
  for (int i = 0; i < 3; ++i) pa.send(pkt(1000));
  // Replace sink behaviour: track times via a wrapper loop run.
  loop.run();
  ASSERT_EQ(b.arrivals.size(), 3u);
  // All three serialised: last leaves at 3 ms.
  EXPECT_EQ(loop.now(), 3 * kMillisecond);
  EXPECT_EQ(pa.tx_packets(), 3u);
  EXPECT_EQ(pa.tx_bytes(), 3000u);
}

TEST_F(LinkFixture, QueueOverflowDrops) {
  Link link(loop, 8e6, 0);
  Port pa(loop, a, 0, 2);  // 1 transmitting + 2 queued max
  Port pb(loop, b, 0, 10);
  link.attach(pa, pb);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (pa.send(pkt(1000))) ++accepted;
  }
  loop.run();
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(b.arrivals.size(), 3u);
  EXPECT_EQ(pa.drops(), 7u);
}

TEST_F(LinkFixture, BacklogIncludesInFlightPacket) {
  Link link(loop, 8e6, 0);
  Port pa(loop, a, 0, 10);
  Port pb(loop, b, 0, 10);
  link.attach(pa, pb);
  EXPECT_EQ(pa.backlog(), 0u);
  pa.send(pkt(1000));
  pa.send(pkt(1000));
  EXPECT_EQ(pa.backlog(), 2u);  // 1 transmitting + 1 queued
  EXPECT_EQ(pa.queue().size(), 1u);
  loop.run();
  EXPECT_EQ(pa.backlog(), 0u);
}

TEST_F(LinkFixture, UnconnectedPortDropsAndCounts) {
  Port pa(loop, a, 0, 10);
  EXPECT_FALSE(pa.send(pkt(100)));
  EXPECT_EQ(pa.drops(), 1u);
  EXPECT_FALSE(pa.connected());
}

TEST_F(LinkFixture, RxCountersOnPeer) {
  Link link(loop, 8e6, 0);
  Port pa(loop, a, 0, 10);
  Port pb(loop, b, 0, 10);
  link.attach(pa, pb);
  pa.send(pkt(700));
  loop.run();
  EXPECT_EQ(pb.rx_packets(), 1u);
  EXPECT_EQ(pb.rx_bytes(), 700u);
  EXPECT_EQ(pa.rx_packets(), 0u);
}

TEST_F(LinkFixture, InPortReportedToReceiver) {
  Link link(loop, 8e6, 0);
  Port pa(loop, a, 0, 10);
  Port pb(loop, b, 3, 10);  // receiver port index 3
  link.attach(pa, pb);
  pa.send(pkt(100));
  loop.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].second, 3u);
}

}  // namespace
}  // namespace mdn::net
