#include "net/flow_table.h"

#include <gtest/gtest.h>

namespace mdn::net {
namespace {

Packet make_pkt(std::uint16_t dst_port, IpProto proto = IpProto::kTcp) {
  Packet p;
  p.flow = {make_ipv4(10, 0, 0, 1), make_ipv4(10, 0, 0, 2), 5555, dst_port,
            proto};
  p.size_bytes = 500;
  return p;
}

FlowEntry entry(int priority, Match match, Action action) {
  FlowEntry e;
  e.priority = priority;
  e.match = match;
  e.actions = {action};
  return e;
}

TEST(Match, WildcardMatchesEverything) {
  const Match m = Match::any();
  EXPECT_TRUE(m.matches(make_pkt(80), 0));
  EXPECT_TRUE(m.matches(make_pkt(443, IpProto::kUdp), 7));
}

TEST(Match, EachFieldFilters) {
  Match m;
  m.dst_port = 80;
  EXPECT_TRUE(m.matches(make_pkt(80), 0));
  EXPECT_FALSE(m.matches(make_pkt(81), 0));

  Match mp;
  mp.proto = IpProto::kUdp;
  EXPECT_FALSE(mp.matches(make_pkt(80), 0));

  Match mi;
  mi.in_port = 2;
  EXPECT_TRUE(mi.matches(make_pkt(80), 2));
  EXPECT_FALSE(mi.matches(make_pkt(80), 3));

  Match ms;
  ms.src_ip = make_ipv4(10, 0, 0, 1);
  EXPECT_TRUE(ms.matches(make_pkt(80), 0));
  ms.src_ip = make_ipv4(10, 0, 0, 9);
  EXPECT_FALSE(ms.matches(make_pkt(80), 0));
}

TEST(Match, CompoundMatchRequiresAllFields) {
  Match m;
  m.dst_port = 80;
  m.proto = IpProto::kTcp;
  m.in_port = 1;
  EXPECT_TRUE(m.matches(make_pkt(80), 1));
  EXPECT_FALSE(m.matches(make_pkt(80), 2));
  EXPECT_FALSE(m.matches(make_pkt(80, IpProto::kUdp), 1));
}

TEST(FlowTable, HighestPriorityWins) {
  FlowTable table;
  Match port80;
  port80.dst_port = 80;
  table.add(entry(1, Match::any(), Action::output(1)), 0);
  table.add(entry(100, port80, Action::drop()), 0);

  FlowEntry* hit = table.lookup(make_pkt(80), 0, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->priority, 100);
  EXPECT_EQ(hit->actions[0].type, ActionType::kDrop);

  hit = table.lookup(make_pkt(22), 0, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->priority, 1);
}

TEST(FlowTable, InsertionOrderPreservedAmongEqualPriorities) {
  FlowTable table;
  table.add(entry(5, Match::any(), Action::output(1)), 0);
  table.add(entry(5, Match::any(), Action::output(2)), 0);
  FlowEntry* hit = table.lookup(make_pkt(80), 0, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->actions[0].port, 1u);
}

TEST(FlowTable, MissReturnsNull) {
  FlowTable table;
  Match m;
  m.dst_port = 443;
  table.add(entry(1, m, Action::output(1)), 0);
  EXPECT_EQ(table.lookup(make_pkt(80), 0, 0), nullptr);
}

TEST(FlowTable, CountersAccumulate) {
  FlowTable table;
  const auto cookie = table.add(entry(1, Match::any(), Action::output(1)), 0);
  table.lookup(make_pkt(80), 0, 10);
  table.lookup(make_pkt(81), 0, 20);
  const auto& e = table.entries().front();
  EXPECT_EQ(e.cookie, cookie);
  EXPECT_EQ(e.packets, 2u);
  EXPECT_EQ(e.bytes, 1000u);
  EXPECT_EQ(e.last_matched, 20);
}

TEST(FlowTable, CookiesAutoAssignedUnique) {
  FlowTable table;
  const auto c1 = table.add(entry(1, Match::any(), Action::drop()), 0);
  const auto c2 = table.add(entry(2, Match::any(), Action::drop()), 0);
  EXPECT_NE(c1, c2);
  EXPECT_NE(c1, 0u);
}

TEST(FlowTable, ExplicitCookiePreserved) {
  FlowTable table;
  FlowEntry e = entry(1, Match::any(), Action::drop());
  e.cookie = 777;
  EXPECT_EQ(table.add(e, 0), 777u);
}

TEST(FlowTable, RemoveByCookie) {
  FlowTable table;
  const auto c = table.add(entry(1, Match::any(), Action::drop()), 0);
  table.add(entry(2, Match::any(), Action::drop()), 0);
  EXPECT_EQ(table.remove_by_cookie(c), 1u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.remove_by_cookie(c), 0u);
}

TEST(FlowTable, RemoveByMatch) {
  FlowTable table;
  Match m;
  m.dst_port = 80;
  table.add(entry(1, m, Action::drop()), 0);
  table.add(entry(2, Match::any(), Action::drop()), 0);
  EXPECT_EQ(table.remove_by_match(m), 1u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTable, HardTimeoutExpires) {
  FlowTable table;
  FlowEntry e = entry(1, Match::any(), Action::output(0));
  e.hard_timeout = 100;
  table.add(e, 0);
  EXPECT_NE(table.lookup(make_pkt(80), 0, 50), nullptr);
  EXPECT_EQ(table.lookup(make_pkt(80), 0, 150), nullptr);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, IdleTimeoutRefreshedByTraffic) {
  FlowTable table;
  FlowEntry e = entry(1, Match::any(), Action::output(0));
  e.idle_timeout = 100;
  table.add(e, 0);
  EXPECT_NE(table.lookup(make_pkt(80), 0, 90), nullptr);   // refresh
  EXPECT_NE(table.lookup(make_pkt(80), 0, 180), nullptr);  // still alive
  EXPECT_EQ(table.lookup(make_pkt(80), 0, 290), nullptr);  // idled out
}

TEST(FlowTable, HardTimeoutNotRefreshedByTraffic) {
  FlowTable table;
  FlowEntry e = entry(1, Match::any(), Action::output(0));
  e.hard_timeout = 100;
  table.add(e, 0);
  EXPECT_NE(table.lookup(make_pkt(80), 0, 99), nullptr);
  EXPECT_EQ(table.lookup(make_pkt(80), 0, 100), nullptr);
}

TEST(FlowTable, ZeroTimeoutMeansForever) {
  FlowTable table;
  table.add(entry(1, Match::any(), Action::output(0)), 0);
  EXPECT_NE(table.lookup(make_pkt(80), 0, 1'000'000'000'000LL), nullptr);
}

TEST(FlowTable, ClearEmptiesTable) {
  FlowTable table;
  table.add(entry(1, Match::any(), Action::drop()), 0);
  table.add(entry(2, Match::any(), Action::drop()), 0);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTable, ActionFactories) {
  EXPECT_EQ(Action::output(3).type, ActionType::kOutput);
  EXPECT_EQ(Action::output(3).port, 3u);
  EXPECT_EQ(Action::drop().type, ActionType::kDrop);
  EXPECT_EQ(Action::flood().type, ActionType::kFlood);
  const auto g = Action::group({1, 2});
  EXPECT_EQ(g.type, ActionType::kGroup);
  EXPECT_EQ(g.group_ports.size(), 2u);
}

}  // namespace
}  // namespace mdn::net
