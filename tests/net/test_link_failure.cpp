// Link failure injection: the data-plane failure mode that motivates
// out-of-band management (§1).
#include <gtest/gtest.h>

#include "net/network.h"

namespace mdn::net {
namespace {

Packet make_pkt(std::uint32_t src, std::uint32_t dst) {
  Packet p;
  p.flow = {src, dst, 40000, 80, IpProto::kTcp};
  p.size_bytes = 100;
  return p;
}

struct FailureFixture : ::testing::Test {
  void SetUp() override {
    sw = &net.add_switch("s1");
    h1 = &net.add_host("h1", make_ipv4(10, 0, 0, 1));
    h2 = &net.add_host("h2", make_ipv4(10, 0, 0, 2));
    net.connect(*h1, *sw);
    out = net.connect(*h2, *sw);
    FlowEntry e;
    e.priority = 1;
    e.actions = {Action::output(out)};
    sw->flow_table().add(e, 0);
  }

  Network net;
  Switch* sw = nullptr;
  Host* h1 = nullptr;
  Host* h2 = nullptr;
  std::size_t out = 0;
};

TEST_F(FailureFixture, LinksStartUp) {
  ASSERT_EQ(net.link_count(), 2u);
  EXPECT_TRUE(net.link_at(0).is_up());
  EXPECT_TRUE(net.link_at(1).is_up());
}

TEST_F(FailureFixture, DownLinkLosesPackets) {
  net.link_at(1).set_up(false);  // h2's link
  h1->send(make_pkt(h1->ip(), h2->ip()));
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), 0u);
  EXPECT_EQ(net.link_at(1).lost_packets(), 1u);
}

TEST_F(FailureFixture, RepairRestoresDelivery) {
  net.link_at(1).set_up(false);
  h1->send(make_pkt(h1->ip(), h2->ip()));
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), 0u);

  net.link_at(1).set_up(true);
  h1->send(make_pkt(h1->ip(), h2->ip()));
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), 1u);
}

TEST_F(FailureFixture, MidFlightFailureDropsInFlightPacket) {
  // Fail the link while the packet is serialising: it is lost at
  // delivery time, like a cable cut mid-frame.
  h1->send(make_pkt(h1->ip(), h2->ip()));
  net.link_at(0).set_up(false);
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), 0u);
  EXPECT_EQ(net.link_at(0).lost_packets(), 1u);
}

TEST_F(FailureFixture, PortLinkAccessor) {
  ASSERT_NE(h1->port().attached_link(), nullptr);
  EXPECT_EQ(h1->port().attached_link(), &net.link_at(0));
  h1->port().attached_link()->set_up(false);
  h1->send(make_pkt(h1->ip(), h2->ip()));
  net.loop().run();
  EXPECT_EQ(h2->rx_packets(), 0u);
}

TEST_F(FailureFixture, FailureIsDirectionless) {
  net.link_at(0).set_up(false);
  // Traffic in the reverse direction dies too.
  FlowEntry back;
  back.priority = 2;
  back.match.dst_ip = h1->ip();
  back.actions = {Action::output(0)};
  sw->flow_table().add(back, 0);
  h2->send(make_pkt(h2->ip(), h1->ip()));
  net.loop().run();
  EXPECT_EQ(h1->rx_packets(), 0u);
}

}  // namespace
}  // namespace mdn::net
