#include "net/queue.h"

#include <gtest/gtest.h>

namespace mdn::net {
namespace {

Packet pkt(std::uint64_t id, std::uint32_t bytes = 100) {
  Packet p;
  p.id = id;
  p.size_bytes = bytes;
  return p;
}

TEST(Queue, FifoOrder) {
  DropTailQueue q(10);
  q.push(pkt(1));
  q.push(pkt(2));
  q.push(pkt(3));
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_EQ(q.pop()->id, 2u);
  EXPECT_EQ(q.pop()->id, 3u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(Queue, CapacityEnforced) {
  DropTailQueue q(2);
  EXPECT_TRUE(q.push(pkt(1)));
  EXPECT_TRUE(q.push(pkt(2)));
  EXPECT_FALSE(q.push(pkt(3)));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.drops(), 1u);
}

TEST(Queue, DropDoesNotAffectContents) {
  DropTailQueue q(1);
  q.push(pkt(1));
  q.push(pkt(2));  // dropped
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(Queue, ByteAccounting) {
  DropTailQueue q(10);
  q.push(pkt(1, 100));
  q.push(pkt(2, 250));
  EXPECT_EQ(q.bytes(), 350u);
  q.pop();
  EXPECT_EQ(q.bytes(), 250u);
  q.pop();
  EXPECT_EQ(q.bytes(), 0u);
}

TEST(Queue, ConservationInvariant) {
  // enqueued == dequeued + still-queued + never (drops are not enqueued).
  DropTailQueue q(5);
  for (std::uint64_t i = 0; i < 20; ++i) q.push(pkt(i));
  std::size_t popped = 0;
  while (q.pop()) ++popped;
  EXPECT_EQ(q.enqueued(), 5u);
  EXPECT_EQ(q.dequeued(), popped);
  EXPECT_EQ(q.drops(), 15u);
  EXPECT_EQ(q.enqueued(), q.dequeued());
}

TEST(Queue, HighWatermarkTracksPeak) {
  DropTailQueue q(100);
  for (std::uint64_t i = 0; i < 30; ++i) q.push(pkt(i));
  for (int i = 0; i < 25; ++i) q.pop();
  for (std::uint64_t i = 0; i < 10; ++i) q.push(pkt(100 + i));
  EXPECT_EQ(q.high_watermark(), 30u);
}

TEST(Queue, ZeroCapacityDropsEverything) {
  DropTailQueue q(0);
  EXPECT_FALSE(q.push(pkt(1)));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(Queue, PaperThresholdsObservable) {
  // The §6 bands: fill to 80 packets, check the 25/75 thresholds are
  // crossed as occupancy evolves.
  DropTailQueue q(200);
  std::size_t below25 = 0, mid = 0, above75 = 0;
  for (std::uint64_t i = 0; i < 80; ++i) {
    q.push(pkt(i));
    const std::size_t n = q.size();
    if (n < 25) ++below25;
    else if (n <= 75) ++mid;
    else ++above75;
  }
  EXPECT_EQ(below25, 24u);
  EXPECT_EQ(mid, 51u);
  EXPECT_EQ(above75, 5u);
}

}  // namespace
}  // namespace mdn::net
