// Journal determinism across worker counts (own rt-linked binary).
//
// The acceptance bar for the flight recorder: the same block schedule,
// journal enabled, run through the streaming runtime at 1 and at 4
// workers, must export a byte-identical canonical journal.jsonl — the
// producer/delivery mint interleaving may differ, the content may not.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/sim_time.h"
#include "obs/journal.h"
#include "obs/latency.h"
#include "obs/scoreboard.h"
#include "obs/timeline.h"
#include "rt/stream_runtime.h"

namespace mdn {
namespace {

constexpr double kSampleRate = 48000.0;
constexpr std::size_t kBlockSize = 2400;  // 50 ms
constexpr double kHopS = 0.05;

std::vector<double> tone_block(double frequency_hz, double amplitude) {
  std::vector<double> samples(kBlockSize);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = amplitude * std::sin(2.0 * 3.14159265358979323846 *
                                      frequency_hz *
                                      (static_cast<double>(i) / kSampleRate));
  }
  return samples;
}

rt::StreamRuntimeConfig runtime_config(std::size_t workers,
                                       std::size_t ring_capacity,
                                       rt::DropPolicy policy) {
  rt::StreamRuntimeConfig config;
  config.workers = workers;
  config.ring_capacity = ring_capacity;
  config.drop_policy = policy;
  config.watch_hz = {800.0, 1200.0};
  config.detector.sample_rate = kSampleRate;
  config.detector.block_size = kBlockSize;
  return config;
}

// Submits an identical schedule — `mics` microphones, `blocks` blocks
// each, every even block carrying a tagged 800 Hz tone — then finishes
// and returns the canonical journal export.
std::string run_schedule(std::size_t workers, std::size_t mics,
                         std::size_t blocks, std::size_t ring_capacity,
                         rt::DropPolicy policy) {
  obs::Journal& journal = obs::Journal::global();
  journal.enable(4096);
  journal.clear();

  rt::StreamRuntime runtime(runtime_config(workers, ring_capacity, policy));
  for (std::size_t m = 0; m < mics; ++m) {
    runtime.add_mic("mic" + std::to_string(m));
  }
  const std::vector<double> tone = tone_block(800.0, 0.1);
  const std::vector<double> silence(kBlockSize, 0.0);

  // All blocks submitted before start(): the producer-side mint order is
  // fixed, and under a lossy policy the drop pattern is too.
  for (std::size_t seq = 0; seq < blocks; ++seq) {
    const double start_s = static_cast<double>(seq) * kHopS;
    for (std::size_t m = 0; m < mics; ++m) {
      if (seq % 2 == 0) {
        obs::JournalRecord emitted;
        emitted.kind = obs::JournalKind::kToneEmitted;
        emitted.sim_ns = net::from_seconds(start_s);
        emitted.frequency_hz = 800.0;
        emitted.aux = m;
        obs::set_journal_label(emitted, "testtone");
        const audio::EmissionTag tag{journal.append(emitted), 800.0};
        runtime.submit_block(static_cast<std::uint32_t>(m), start_s, tone,
                             std::span<const audio::EmissionTag>(&tag, 1));
      } else {
        runtime.submit_block(static_cast<std::uint32_t>(m), start_s,
                             silence);
      }
    }
  }
  runtime.finish();

  std::string jsonl = obs::to_journal_jsonl(journal);
  journal.disable();
  journal.clear();
  return jsonl;
}

TEST(JournalRtDeterminism, ByteIdenticalAcrossWorkerCounts) {
  // Golden-file diff: the 1-worker export is the golden reference; the
  // 4-worker export must match it byte for byte.
  const std::string golden =
      run_schedule(1, 4, 20, 32, rt::DropPolicy::kBlock);
  ASSERT_FALSE(golden.empty());
  const std::string golden_path =
      ::testing::TempDir() + "journal_golden.jsonl";
  {
    std::ofstream f(golden_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(f.is_open());
    f << golden;
  }

  const std::string parallel =
      run_schedule(4, 4, 20, 32, rt::DropPolicy::kBlock);
  std::ifstream f(golden_path, std::ios::binary);
  std::ostringstream from_disk;
  from_disk << f.rdbuf();
  EXPECT_EQ(parallel, from_disk.str());
  std::remove(golden_path.c_str());
}

// One profiled run: the block schedule of run_schedule plus (a) a
// latency-attribution pass over the resulting journal and (b) a timeline
// sampled once per submission round from owner-side instruments.  With
// the lossless policy every journal mint happens on the owner thread
// (emissions and ingests at submit, detections at delivery), so both
// exports must come out byte-identical regardless of worker count.
struct ProfiledRun {
  std::string stage_prom;    ///< LatencyProfiler::to_prometheus()
  std::string stage_render;  ///< LatencyProfiler::render()
  std::string timeline;      ///< Timeline::to_timeline_jsonl()
};

ProfiledRun run_profiled_schedule(std::size_t workers) {
  obs::Journal& journal = obs::Journal::global();
  journal.enable(4096);
  journal.clear();

  rt::StreamRuntime runtime(
      runtime_config(workers, 32, rt::DropPolicy::kBlock));
  for (std::size_t m = 0; m < 2; ++m) {
    runtime.add_mic("mic" + std::to_string(m));
  }

  obs::Counter submitted;
  obs::Gauge journal_records;
  obs::Timeline timeline({.capacity = 64});
  timeline.track_counter("run/blocks_submitted", submitted);
  timeline.track_gauge("run/journal_records", journal_records);

  const std::vector<double> tone = tone_block(800.0, 0.1);
  const std::vector<double> silence(kBlockSize, 0.0);
  for (std::size_t seq = 0; seq < 20; ++seq) {
    const double start_s = static_cast<double>(seq) * kHopS;
    for (std::size_t m = 0; m < 2; ++m) {
      if (seq % 2 == 0) {
        obs::JournalRecord emitted;
        emitted.kind = obs::JournalKind::kToneEmitted;
        emitted.sim_ns = net::from_seconds(start_s);
        emitted.frequency_hz = 800.0;
        emitted.aux = m;
        obs::set_journal_label(emitted, "testtone");
        const audio::EmissionTag tag{journal.append(emitted), 800.0};
        runtime.submit_block(static_cast<std::uint32_t>(m), start_s, tone,
                             std::span<const audio::EmissionTag>(&tag, 1));
      } else {
        runtime.submit_block(static_cast<std::uint32_t>(m), start_s,
                             silence);
      }
      submitted.inc();
    }
    journal_records.set(static_cast<std::int64_t>(journal.size()));
    timeline.sample(net::from_seconds(start_s + kHopS));
  }
  runtime.finish();

  obs::LatencyProfiler profiler(journal);
  profiler.profile(obs::JournalKind::kToneDetected);
  ProfiledRun run;
  run.stage_prom = profiler.to_prometheus();
  run.stage_render = profiler.render();
  run.timeline = timeline.to_timeline_jsonl();
  journal.disable();
  journal.clear();
  return run;
}

TEST(JournalRtDeterminism, StageHistogramsAndTimelineByteIdentical) {
  // Golden-file diff: 1-worker exports are the reference; the 4-worker
  // run must reproduce both files byte for byte.
  const ProfiledRun golden = run_profiled_schedule(1);
  ASSERT_FALSE(golden.stage_prom.empty());
  ASSERT_FALSE(golden.timeline.empty());
  // The schedule detects tones, so capture and ring_wait must be
  // attributed (fsm/app stages need a controller, absent here).
  EXPECT_NE(golden.stage_prom.find("stage=\"capture\""), std::string::npos);
  EXPECT_NE(golden.stage_prom.find("stage=\"ring_wait\""),
            std::string::npos);

  const std::string prom_path = ::testing::TempDir() + "stage_golden.prom";
  const std::string tl_path = ::testing::TempDir() + "timeline_golden.jsonl";
  {
    std::ofstream pf(prom_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(pf.is_open());
    pf << golden.stage_prom;
    std::ofstream tf(tl_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(tf.is_open());
    tf << golden.timeline;
  }

  const ProfiledRun parallel = run_profiled_schedule(4);
  std::ifstream pf(prom_path, std::ios::binary);
  std::ostringstream prom_disk;
  prom_disk << pf.rdbuf();
  EXPECT_EQ(parallel.stage_prom, prom_disk.str());
  std::ifstream tf(tl_path, std::ios::binary);
  std::ostringstream tl_disk;
  tl_disk << tf.rdbuf();
  EXPECT_EQ(parallel.timeline, tl_disk.str());
  EXPECT_EQ(parallel.stage_render, golden.stage_render);
  std::remove(prom_path.c_str());
  std::remove(tl_path.c_str());
}

TEST(JournalRtDeterminism, ByteIdenticalAcrossRepeatedRuns) {
  const std::string first =
      run_schedule(2, 2, 12, 16, rt::DropPolicy::kBlock);
  const std::string second =
      run_schedule(2, 2, 12, 16, rt::DropPolicy::kBlock);
  EXPECT_EQ(first, second);
}

TEST(JournalRtDeterminism, JournalRecordsEveryHop) {
  obs::Journal& journal = obs::Journal::global();
  journal.enable(4096);
  journal.clear();
  rt::StreamRuntime runtime(
      runtime_config(2, 16, rt::DropPolicy::kBlock));
  runtime.add_mic("m0");
  const std::vector<double> tone = tone_block(800.0, 0.1);
  obs::JournalRecord emitted;
  emitted.kind = obs::JournalKind::kToneEmitted;
  emitted.frequency_hz = 800.0;
  const audio::EmissionTag tag{journal.append(emitted), 800.0};
  runtime.submit_block(0, 0.0, tone,
                       std::span<const audio::EmissionTag>(&tag, 1));
  runtime.finish();

  ASSERT_EQ(runtime.events().size(), 1u);
  const rt::StreamEvent& event = runtime.events()[0];
  // The delivered event cites the detection record, which cites the
  // emission (cause) and the block ingest (cause2) — explain() from the
  // event recovers the full emitted -> ingested -> detected path.
  ASSERT_NE(event.cause, 0u);
  const auto chain = journal.explain(event.cause);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain.front().kind, obs::JournalKind::kToneEmitted);
  EXPECT_EQ(chain[1].kind, obs::JournalKind::kBlockIngested);
  EXPECT_EQ(chain.back().kind, obs::JournalKind::kToneDetected);
  journal.disable();
  journal.clear();
}

TEST(ScoreboardRt, CleanRunHasFullRecallLossyRunHasLess) {
  obs::Journal& journal = obs::Journal::global();

  // Clean: lossless policy, one mic, every tone detected.
  journal.enable(8192);
  journal.clear();
  {
    rt::StreamRuntime runtime(
        runtime_config(2, 64, rt::DropPolicy::kBlock));
    runtime.add_mic("m0");
    const std::vector<double> tone = tone_block(800.0, 0.1);
    const std::vector<double> silence(kBlockSize, 0.0);
    for (std::size_t seq = 0; seq < 20; ++seq) {
      const double start_s = static_cast<double>(seq) * kHopS;
      if (seq % 2 == 0) {
        obs::JournalRecord emitted;
        emitted.kind = obs::JournalKind::kToneEmitted;
        emitted.sim_ns = net::from_seconds(start_s);
        emitted.frequency_hz = 800.0;
        const audio::EmissionTag tag{journal.append(emitted), 800.0};
        runtime.submit_block(0, start_s, tone,
                             std::span<const audio::EmissionTag>(&tag, 1));
      } else {
        runtime.submit_block(0, start_s, silence);
      }
    }
    runtime.finish();
  }
  const obs::Scoreboard clean = obs::Scoreboard::build(
      obs::Journal::global(), {.watch_hz = {800.0, 1200.0}});
  EXPECT_DOUBLE_EQ(clean.recall(0), 1.0);
  EXPECT_EQ(clean.totals(0).dropped, 0u);
  // Detection latency is one block (detection stamps the block end).
  EXPECT_NEAR(clean.cell(0, 0).latency_quantile(0.5), kHopS, 1e-9);

  // Lossy: a 2-slot ring, everything submitted before the workers start,
  // DropNewest — most tone blocks bounce off the full ring.
  journal.clear();
  {
    rt::StreamRuntime runtime(
        runtime_config(1, 2, rt::DropPolicy::kDropNewest));
    runtime.add_mic("m0");
    const std::vector<double> tone = tone_block(800.0, 0.1);
    const std::vector<double> silence(kBlockSize, 0.0);
    for (std::size_t seq = 0; seq < 10; ++seq) {
      const double start_s = static_cast<double>(seq) * kHopS;
      if (seq % 2 == 0) {
        obs::JournalRecord emitted;
        emitted.kind = obs::JournalKind::kToneEmitted;
        emitted.sim_ns = net::from_seconds(start_s);
        emitted.frequency_hz = 800.0;
        const audio::EmissionTag tag{journal.append(emitted), 800.0};
        runtime.submit_block(0, start_s, tone,
                             std::span<const audio::EmissionTag>(&tag, 1));
      } else {
        runtime.submit_block(0, start_s, silence);
      }
    }
    runtime.finish();
  }
  const obs::Scoreboard lossy = obs::Scoreboard::build(
      obs::Journal::global(), {.watch_hz = {800.0, 1200.0}});
  EXPECT_LT(lossy.recall(0), 1.0);
  EXPECT_GT(lossy.totals(0).dropped, 0u);
  // Every miss is attributed: dropped tones account for all of them.
  EXPECT_EQ(lossy.totals(0).dropped, lossy.totals(0).missed);

  journal.disable();
  journal.clear();
}

}  // namespace
}  // namespace mdn
