#include "obs/trace.h"

#include <gtest/gtest.h>

#include "obs/export.h"

namespace mdn::obs {
namespace {

std::int64_t fake_clock() { return 42; }

TEST(TracerTest, DisabledByDefaultAndRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  const auto track = t.track("net/loop");
  t.instant("onset", track, 1000);
  { TraceSpan span(&t, "work", track, 2000); }
  EXPECT_TRUE(t.events().empty());
}

TEST(TracerTest, TrackRegistrationIsIdempotent) {
  Tracer t;
  EXPECT_EQ(t.track("a"), 0u);
  EXPECT_EQ(t.track("b"), 1u);
  EXPECT_EQ(t.track("a"), 0u);
  ASSERT_EQ(t.track_names().size(), 2u);
}

TEST(TracerTest, RecordsInstantAndCompleteEvents) {
  Tracer t;
  t.enable();
  t.set_wall_clock(&fake_clock);
  const auto track = t.track("mdn/controller");
  t.instant("onset", track, 5000);
  t.complete("detect", track, 6000, 100, 2500);
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.events()[0].phase, 'i');
  EXPECT_EQ(t.events()[0].sim_ns, 5000);
  EXPECT_EQ(t.events()[0].wall_ns, 42);
  EXPECT_EQ(t.events()[1].phase, 'X');
  EXPECT_EQ(t.events()[1].wall_dur_ns, 2500);
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(TracerTest, SpanUsesInjectedClock) {
  Tracer t;
  t.enable();
  t.set_wall_clock(&fake_clock);
  const auto track = t.track("x");
  { TraceSpan span(&t, "work", track, 7000); }
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_EQ(t.events()[0].name, "work");
  EXPECT_EQ(t.events()[0].sim_ns, 7000);
  EXPECT_EQ(t.events()[0].wall_dur_ns, 0);  // frozen clock
}

TEST(TracerTest, NullTracerSpanIsANoop) {
  TraceSpan span(nullptr, "nothing", 0, 0);  // must not crash
}

// Golden test: the exact Chrome trace_event JSON for a fixed event
// sequence with an injected wall clock.
TEST(TracerTest, ChromeTraceGolden) {
  Tracer t;
  t.enable();
  t.set_wall_clock(&fake_clock);
  const auto loop = t.track("net/loop");
  const auto ctl = t.track("mdn/controller");
  t.complete("event", loop, 1500, 100, 2500);
  t.instant("onset", ctl, 2000);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"net/loop\"}},"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"mdn/controller\"}},"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"event\",\"ts\":1.500,"
      "\"dur\":2.500,\"args\":{\"sim_ns\":1500,\"wall_ns\":100}},"
      "{\"ph\":\"i\",\"pid\":0,\"tid\":1,\"name\":\"onset\",\"ts\":2.000,"
      "\"s\":\"t\",\"args\":{\"sim_ns\":2000,\"wall_ns\":42}}"
      "]}";
  EXPECT_EQ(to_chrome_trace(t), expected);
}

}  // namespace
}  // namespace mdn::obs
