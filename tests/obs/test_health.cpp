// obs::Health / MicSignalEstimator unit tests: estimator math (EWMA
// noise floor, per-watch SNR, onset rate, silence), the SLO engine's
// for-duration windows and severity resolution, kHealthAlert minting
// with cause chains, and the canonical exporters.
#include "obs/health.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "obs/journal.h"

namespace mdn::obs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

HealthConfig easy_config() {
  HealthConfig cfg;
  cfg.watch_count = 2;
  cfg.noise_floor_alpha = 0.5;  // halves the EWMA math in assertions
  cfg.snr_alpha = 0.5;
  return cfg;
}

BlockSignalStats stats_with_floor(double floor) {
  BlockSignalStats stats;
  stats.noise_floor = floor;
  return stats;
}

SloSpec noise_rule(double threshold, double for_s = 0.0,
                   HealthState severity = HealthState::kDegraded) {
  SloSpec spec;
  spec.name = "noise_floor_high";
  spec.metric = SloSpec::Metric::kNoiseFloor;
  spec.op = SloSpec::Op::kAbove;
  spec.threshold = threshold;
  spec.for_s = for_s;
  spec.severity = severity;
  return spec;
}

TEST(HealthNames, StateAndMetricNamesAreStable) {
  EXPECT_EQ(health_state_name(HealthState::kOk), "ok");
  EXPECT_EQ(health_state_name(HealthState::kDegraded), "degraded");
  EXPECT_EQ(health_state_name(HealthState::kFailed), "failed");
  EXPECT_EQ(slo_metric_name(SloSpec::Metric::kNoiseFloor), "noise_floor");
  EXPECT_EQ(slo_metric_name(SloSpec::Metric::kMinSnrDb), "min_snr_db");
  EXPECT_EQ(slo_metric_name(SloSpec::Metric::kOnsetRateHz), "onset_rate_hz");
  EXPECT_EQ(slo_metric_name(SloSpec::Metric::kSilenceS), "silence_s");
  EXPECT_EQ(slo_metric_name(SloSpec::Metric::kDropCount), "drop_count");
  EXPECT_EQ(slo_metric_name(SloSpec::Metric::kStageLatencyP99),
            "stage_latency_p99");
}

TEST(HealthSloTest, StageLatencyRuleFiresOnlyAfterPublish) {
  Health health(easy_config());
  SloSpec spec;
  spec.name = "capture_p99_slow";
  spec.metric = SloSpec::Metric::kStageLatencyP99;
  spec.stage = LatencyStage::kCapture;
  spec.op = SloSpec::Op::kAbove;
  spec.threshold = 0.1;  // 100 ms of capture latency is unhealthy
  health.add_slo(spec);
  MicSignalEstimator& est = health.estimator(health.add_mic("m0"));

  // Unpublished: the metric reads NaN, the comparison is false, and the
  // rule cannot fire no matter how many blocks pass.
  EXPECT_TRUE(std::isnan(health.stage_latency_p99_s(LatencyStage::kCapture)));
  est.begin_block(0.1, stats_with_floor(0.01));
  est.end_block();
  health.poll();
  EXPECT_EQ(est.state(), HealthState::kOk);

  // Publish a breached p99 (as bench/dashboard code does after a
  // LatencyProfiler::profile() pass): the next block trips the rule.
  health.publish_stage_latency(LatencyStage::kCapture, 0.25);
  EXPECT_DOUBLE_EQ(health.stage_latency_p99_s(LatencyStage::kCapture), 0.25);
  est.begin_block(0.2, stats_with_floor(0.01));
  est.end_block();
  health.poll();
  EXPECT_EQ(est.state(), HealthState::kDegraded);
  ASSERT_EQ(health.alerts().size(), 1u);
  EXPECT_EQ(health.alerts()[0].value, 0.25);

  // Publishing a healthy p99 recovers the mic on the following block.
  health.publish_stage_latency(LatencyStage::kCapture, 0.01);
  est.begin_block(0.3, stats_with_floor(0.01));
  est.end_block();
  health.poll();
  EXPECT_EQ(est.state(), HealthState::kOk);
  ASSERT_EQ(health.alerts().size(), 2u);
  // The jsonl names the new metric kind.
  EXPECT_NE(health.to_health_jsonl().find("stage_latency_p99"),
            std::string::npos);
}

TEST(MicSignalEstimatorTest, NoiseFloorSeedsThenTracksEwma) {
  Health health(easy_config());
  MicSignalEstimator& est = health.estimator(health.add_mic("m0"));

  est.begin_block(0.1, stats_with_floor(0.4));  // first block seeds
  est.end_block();
  EXPECT_DOUBLE_EQ(est.noise_floor(), 0.4);

  est.begin_block(0.2, stats_with_floor(0.8));  // 0.4 + 0.5*(0.8-0.4)
  est.end_block();
  EXPECT_DOUBLE_EQ(est.noise_floor(), 0.6);
  EXPECT_EQ(est.blocks(), 2u);
}

TEST(MicSignalEstimatorTest, SnrIsNanUntilHeardThenEwma) {
  Health health(easy_config());
  MicSignalEstimator& est = health.estimator(health.add_mic("m0"));
  EXPECT_TRUE(std::isnan(est.snr_db(0)));
  EXPECT_TRUE(std::isnan(est.snr_db(99)));  // out of range: NaN, no crash
  EXPECT_EQ(est.min_snr_db(), kInf);        // +inf until any watch heard

  est.begin_block(0.1, stats_with_floor(0.01));
  est.observe_watch(0, /*present=*/true, /*onset=*/true, 0.1, 0);
  est.end_block();
  const double first = 20.0 * std::log10(0.1 / 0.01);  // 20 dB, seeds
  EXPECT_DOUBLE_EQ(est.snr_db(0), first);
  EXPECT_DOUBLE_EQ(est.min_snr_db(), first);
  EXPECT_TRUE(std::isnan(est.snr_db(1)));  // other watch still unseen

  est.begin_block(0.2, stats_with_floor(0.01));
  est.observe_watch(0, true, false, 1.0, 0);  // 40 dB observation
  est.end_block();
  const double second = 20.0 * std::log10(1.0 / est.noise_floor());
  EXPECT_DOUBLE_EQ(est.snr_db(0), first + 0.5 * (second - first));
}

TEST(MicSignalEstimatorTest, SilenceGrowsAndResetsOnPresence) {
  Health health(easy_config());
  MicSignalEstimator& est = health.estimator(health.add_mic("m0"));

  est.begin_block(0.1, {});
  est.end_block();
  EXPECT_DOUBLE_EQ(est.silence_s(), 0.0);  // measured from stream start

  est.begin_block(0.2, {});
  est.end_block();
  est.begin_block(0.3, {});
  est.end_block();
  EXPECT_DOUBLE_EQ(est.silence_s(), 0.2);

  est.begin_block(0.4, {});
  est.observe_watch(1, true, true, 0.0, 0);  // heard: silence resets
  est.end_block();
  EXPECT_DOUBLE_EQ(est.silence_s(), 0.0);
}

TEST(MicSignalEstimatorTest, OnsetRateConvergesToPeriodicRate) {
  Health health(easy_config());
  MicSignalEstimator& est = health.estimator(health.add_mic("m0"));
  // One onset per 100 ms block for 10 time constants: the decaying-rate
  // estimate must converge to 10 Hz.
  for (int i = 1; i <= 200; ++i) {
    est.begin_block(0.1 * i, {});
    est.observe_watch(0, true, true, 0.0, 0);
    est.end_block();
  }
  EXPECT_NEAR(est.onset_rate_hz(), 10.0, 0.1);
}

TEST(HealthSloTest, ImmediateRuleFiresAndRecovers) {
  Health health(easy_config());
  health.add_slo(noise_rule(0.5));
  MicSignalEstimator& est = health.estimator(health.add_mic("m0"));

  est.begin_block(0.1, stats_with_floor(1.0));
  est.end_block();
  EXPECT_EQ(est.state(), HealthState::kDegraded);
  ASSERT_EQ(health.poll(), 1u);
  const HealthAlert& fired = health.alerts().back();
  EXPECT_DOUBLE_EQ(fired.time_s, 0.1);
  EXPECT_EQ(fired.mic, 0u);
  EXPECT_EQ(fired.rule, 0u);
  EXPECT_EQ(fired.from, HealthState::kOk);
  EXPECT_EQ(fired.to, HealthState::kDegraded);
  EXPECT_DOUBLE_EQ(fired.value, 1.0);

  est.begin_block(0.2, stats_with_floor(0.0));  // floor decays to 0.5
  est.end_block();
  EXPECT_EQ(est.state(), HealthState::kOk);  // 0.5 > 0.5 is false
  ASSERT_EQ(health.poll(), 1u);
  const HealthAlert& recovered = health.alerts().back();
  EXPECT_EQ(recovered.rule, kHealthNoRule);
  EXPECT_EQ(recovered.from, HealthState::kDegraded);
  EXPECT_EQ(recovered.to, HealthState::kOk);
}

TEST(HealthSloTest, ForDurationDelaysFiring) {
  Health health(easy_config());
  health.add_slo(noise_rule(0.5, /*for_s=*/0.25));
  MicSignalEstimator& est = health.estimator(health.add_mic("m0"));

  // Condition true from the first block (held-since anchors at that
  // block's end, 0.1); it must not fire until 0.25 s have elapsed.
  for (int i = 1; i <= 3; ++i) {
    est.begin_block(0.1 * i, stats_with_floor(1.0));
    est.end_block();
    EXPECT_EQ(est.state(), HealthState::kOk) << "block " << i;
  }
  est.begin_block(0.4, stats_with_floor(1.0));
  est.end_block();
  EXPECT_EQ(est.state(), HealthState::kDegraded);
  EXPECT_EQ(health.poll(), 1u);
  EXPECT_DOUBLE_EQ(health.alerts().back().time_s, 0.4);
}

TEST(HealthSloTest, ForDurationWindowResetsWhenConditionClears) {
  Health health(easy_config());
  health.add_slo(noise_rule(0.5, /*for_s=*/0.25));
  MicSignalEstimator& est = health.estimator(health.add_mic("m0"));

  est.begin_block(0.1, stats_with_floor(1.0));  // holding since 0.0
  est.end_block();
  est.begin_block(0.2, stats_with_floor(0.0));  // floor 0.5: cleared
  est.end_block();
  for (int i = 3; i <= 4; ++i) {  // holding again, but only since 0.2
    est.begin_block(0.1 * i, stats_with_floor(1.0));
    est.end_block();
  }
  EXPECT_EQ(est.state(), HealthState::kOk);  // 0.4 - 0.2 < 0.25
  est.begin_block(0.5, stats_with_floor(1.0));
  est.end_block();
  EXPECT_EQ(est.state(), HealthState::kDegraded);  // 0.5 - 0.2 >= 0.25
}

TEST(HealthSloTest, WorstSeverityAmongFiringRulesWins) {
  Health health(easy_config());
  health.add_slo(noise_rule(0.5, 0.0, HealthState::kDegraded));
  health.add_slo(noise_rule(0.8, 0.0, HealthState::kFailed));
  MicSignalEstimator& est = health.estimator(health.add_mic("m0"));

  est.begin_block(0.1, stats_with_floor(1.0));  // both rules fire
  est.end_block();
  EXPECT_EQ(est.state(), HealthState::kFailed);
  ASSERT_EQ(health.poll(), 1u);
  EXPECT_EQ(health.alerts().back().rule, 1u);  // the kFailed rule
  EXPECT_EQ(health.alerts().back().to, HealthState::kFailed);
}

TEST(HealthSloTest, DropCountRuleCitesTheLastDrop) {
  Health health(easy_config());
  SloSpec spec;
  spec.name = "backpressure";
  spec.metric = SloSpec::Metric::kDropCount;
  spec.op = SloSpec::Op::kAbove;
  spec.threshold = 2.0;
  health.add_slo(spec);
  MicSignalEstimator& est = health.estimator(health.add_mic("m0"));

  est.note_drop(41);
  est.note_drop(42);
  est.note_drop(43);
  EXPECT_EQ(est.drops(), 3u);
  est.begin_block(0.1, {});
  est.end_block();
  ASSERT_EQ(health.poll(), 1u);
  EXPECT_EQ(health.alerts().back().evidence, 43u);  // last drop's journal id
  EXPECT_DOUBLE_EQ(health.alerts().back().value, 3.0);
}

TEST(HealthSloTest, AlertRingOverflowIsCountedNotCorrupting) {
  HealthConfig cfg = easy_config();
  cfg.alert_capacity = 1;
  Health health(cfg);
  health.add_slo(noise_rule(0.5));
  MicSignalEstimator& est = health.estimator(health.add_mic("m0"));

  est.begin_block(0.1, stats_with_floor(1.0));  // fires: ring now full
  est.end_block();
  est.begin_block(0.2, stats_with_floor(0.0));  // recovery: no slot left
  est.end_block();
  EXPECT_EQ(health.alerts_dropped(), 1u);
  EXPECT_EQ(health.poll(), 1u);  // the queued transition still drains
  EXPECT_EQ(health.alerts().back().to, HealthState::kDegraded);
}

TEST(HealthJournalTest, PollMintsHealthAlertWithExplainableCause) {
  Journal& journal = Journal::global();
  journal.enable(256);
  journal.clear();

  JournalRecord emitted;
  emitted.kind = JournalKind::kToneEmitted;
  emitted.sim_ns = 50'000'000;
  emitted.frequency_hz = 800.0;
  const CauseId evidence = journal.append(emitted);

  Health health(easy_config());
  health.add_slo(noise_rule(0.5));
  MicSignalEstimator& est = health.estimator(health.add_mic("m0"));
  est.begin_block(0.1, stats_with_floor(1.0));
  est.observe_watch(0, true, true, 2.0, evidence);
  est.end_block();
  ASSERT_EQ(health.poll(), 1u);

  const HealthAlert& alert = health.alerts().back();
  EXPECT_EQ(alert.evidence, evidence);
  ASSERT_NE(alert.record, 0u);

  JournalRecord rec;
  ASSERT_TRUE(journal.find(alert.record, &rec));
  EXPECT_EQ(rec.kind, JournalKind::kHealthAlert);
  EXPECT_EQ(rec.cause, evidence);
  EXPECT_EQ(rec.mic, 0u);
  EXPECT_EQ(rec.sim_ns, 100'000'000);
  // aux packs rule<<32 | from<<8 | to: rule 0, ok(0) -> degraded(1).
  EXPECT_EQ(rec.aux, 1u);
  EXPECT_STREQ(rec.label, "noise_floor_high");

  // explain() walks the cause chain back to the emission evidence.
  const auto chain = journal.explain(alert.record);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain.front().kind, JournalKind::kToneEmitted);
  EXPECT_EQ(chain.back().kind, JournalKind::kHealthAlert);
  const std::string text = explain_text(journal, alert.record);
  EXPECT_NE(text.find("health_alert"), std::string::npos);
  EXPECT_NE(text.find("0->1"), std::string::npos);

  journal.disable();
  journal.clear();
}

TEST(HealthExportTest, HealthJsonlIsContentSortedAndIdFree) {
  Health health(easy_config());
  health.add_slo(noise_rule(0.5));
  MicSignalEstimator& m0 = health.estimator(health.add_mic("front"));
  MicSignalEstimator& m1 = health.estimator(health.add_mic("rear"));

  // rear fires earlier in sim time, but front drains first in poll():
  // the export must order by content (time), not by drain order.
  m1.begin_block(0.1, stats_with_floor(1.0));
  m1.end_block();
  m0.begin_block(0.2, stats_with_floor(1.0));
  m0.end_block();
  ASSERT_EQ(health.poll(), 2u);

  const std::string jsonl = health.to_health_jsonl();
  const std::string first =
      "{\"time_s\":0.1,\"mic\":1,\"mic_name\":\"rear\","
      "\"rule\":\"noise_floor_high\",\"metric\":\"noise_floor\","
      "\"from\":\"ok\",\"to\":\"degraded\",\"value\":1}\n";
  const std::string second =
      "{\"time_s\":0.2,\"mic\":0,\"mic_name\":\"front\","
      "\"rule\":\"noise_floor_high\",\"metric\":\"noise_floor\","
      "\"from\":\"ok\",\"to\":\"degraded\",\"value\":1}\n";
  EXPECT_EQ(jsonl, first + second);
}

TEST(HealthExportTest, PrometheusSpellsNonFiniteAndSkipsUnheardWatches) {
  Health health(easy_config());
  health.add_mic("m0");
  const std::string prom = health.to_prometheus();

  EXPECT_NE(prom.find("# TYPE mdn_health_component_state gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("mdn_health_component_state{mic=\"m0\"} 0"),
            std::string::npos);
  // No watch heard yet: min-SNR is +Inf (the text-format spelling, not
  // printf's "inf"), and no per-watch snr_db samples exist at all.
  EXPECT_NE(prom.find("mdn_health_min_snr_db{mic=\"m0\"} +Inf"),
            std::string::npos);
  EXPECT_EQ(prom.find("mdn_health_snr_db{"), std::string::npos);
  EXPECT_EQ(prom.find("nan"), std::string::npos);
  EXPECT_EQ(prom.find("inf"), std::string::npos);
  // All three severity splits are present even at zero.
  EXPECT_NE(
      prom.find("mdn_health_alerts_total{mic=\"m0\",severity=\"ok\"} 0"),
      std::string::npos);
  EXPECT_NE(prom.find(
                "mdn_health_alerts_total{mic=\"m0\",severity=\"failed\"} 0"),
            std::string::npos);
}

TEST(HealthExportTest, ReportAndRenderSurfaceWorstState) {
  Health health(easy_config());
  health.add_slo(noise_rule(0.5, 0.0, HealthState::kFailed));
  health.add_mic("healthy");
  MicSignalEstimator& sick = health.estimator(health.add_mic("sick"));
  sick.begin_block(0.1, stats_with_floor(1.0));
  sick.end_block();
  health.poll();

  const Health::Report report = health.report();
  ASSERT_EQ(report.mics.size(), 2u);
  EXPECT_EQ(report.worst, HealthState::kFailed);
  EXPECT_EQ(report.mics[0].state, HealthState::kOk);
  EXPECT_EQ(report.mics[1].state, HealthState::kFailed);
  EXPECT_EQ(report.mics[1].alerts, 1u);

  const std::string panel = health.render();
  EXPECT_NE(panel.find("worst=failed"), std::string::npos);
  EXPECT_NE(panel.find("sick"), std::string::npos);
  EXPECT_NE(panel.find("noise_floor_high"), std::string::npos);
}

}  // namespace
}  // namespace mdn::obs
