// Observability must be a pure observer: enabling tracing and poking the
// metrics registry may not change a single simulated event, so an
// instrumented run's ToneEvent log must be bit-identical to a plain run.
#include <gtest/gtest.h>

#include <vector>

#include "audio/channel.h"
#include "audio/synth.h"
#include "mdn/controller.h"
#include "net/event_loop.h"
#include "obs/obs.h"

namespace mdn::core {
namespace {

constexpr double kSampleRate = 48000.0;

struct RunResult {
  std::vector<ToneEvent> log;
  std::uint64_t blocks = 0;
  std::uint64_t dispatched = 0;
};

// One full listening experiment: three tones (two watched frequencies,
// one overlap) over a shared channel.  `traced` turns the loop's tracer
// on and snapshots/resets the registry mid-run — the worst-case
// instrumentation load.
RunResult run_scenario(bool traced) {
  net::EventLoop loop;
  if (traced) loop.tracer().enable();

  audio::AcousticChannel channel(kSampleRate);
  const auto source = channel.add_source("speaker", 1.0);

  MdnController::Config cfg;
  cfg.detector.sample_rate = kSampleRate;
  MdnController ctl(loop, channel, cfg);
  ctl.watch(700.0, nullptr);
  ctl.watch(900.0, nullptr);
  ctl.start();

  auto tone = [](double freq, double dur) {
    audio::ToneSpec spec;
    spec.frequency_hz = freq;
    spec.amplitude = 0.1;
    spec.duration_s = dur;
    return audio::make_tone(spec, kSampleRate);
  };
  channel.emit(source, tone(700.0, 0.08), 0.15);
  channel.emit(source, tone(900.0, 0.30), 0.40);
  channel.emit(source, tone(700.0, 0.08), 0.80);

  if (traced) {
    // Exercise registry reads while the simulation is mid-flight.
    loop.schedule_at(net::from_seconds(0.5), [] {
      (void)obs::Registry::global().snapshot();
    });
  }
  loop.schedule_at(net::from_seconds(1.2), [&] { ctl.stop(); });
  loop.run();

  RunResult r;
  r.log = ctl.event_log();
  r.blocks = ctl.blocks_processed();
  r.dispatched = loop.dispatched();
  return r;
}

TEST(ObsDeterminism, TracedRunIsBitIdenticalToPlainRun) {
  const RunResult plain = run_scenario(false);
  const RunResult traced = run_scenario(true);

  EXPECT_GT(plain.log.size(), 0u);
  EXPECT_EQ(plain.blocks, traced.blocks);
  ASSERT_EQ(plain.log.size(), traced.log.size());
  for (std::size_t i = 0; i < plain.log.size(); ++i) {
    // Bit-identical, not approximately equal: the instrumented run must
    // compute the exact same samples in the exact same order.
    EXPECT_EQ(plain.log[i].time_s, traced.log[i].time_s) << i;
    EXPECT_EQ(plain.log[i].frequency_hz, traced.log[i].frequency_hz) << i;
    EXPECT_EQ(plain.log[i].amplitude, traced.log[i].amplitude) << i;
  }
}

TEST(ObsDeterminism, RepeatedPlainRunsAreBitIdentical) {
  const RunResult a = run_scenario(false);
  const RunResult b = run_scenario(false);
  ASSERT_EQ(a.log.size(), b.log.size());
  EXPECT_EQ(a.dispatched, b.dispatched);
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    EXPECT_EQ(a.log[i].time_s, b.log[i].time_s);
    EXPECT_EQ(a.log[i].amplitude, b.log[i].amplitude);
  }
}

TEST(ObsDeterminism, InstrumentsObserveTheRun) {
  obs::Registry::global().reset();
  const RunResult r = run_scenario(true);
  const auto snap = obs::Registry::global().snapshot();
  auto find = [&](const std::string& name) -> const obs::MetricSnapshot* {
    for (const auto& m : snap) {
      if (m.name == name) return &m;
    }
    return nullptr;
  };
  const auto* blocks = find("mdn/controller/blocks");
  ASSERT_NE(blocks, nullptr);
  EXPECT_EQ(blocks->counter, r.blocks);
  const auto* fft = find("dsp/fft/wall_ns");
  ASSERT_NE(fft, nullptr);
  EXPECT_GE(fft->hist.count, r.blocks);
  const auto* dispatched = find("net/loop/events_dispatched");
  ASSERT_NE(dispatched, nullptr);
  EXPECT_EQ(dispatched->counter, r.dispatched);
}

}  // namespace
}  // namespace mdn::core
