#include "obs/export.h"

#include <gtest/gtest.h>

#include <string>

namespace mdn::obs {
namespace {

Registry& sample_registry() {
  static Registry* r = [] {
    auto* reg = new Registry();
    reg->counter("net/switch/s1/packets").add(7);
    reg->gauge("net/loop/queue_depth").set(3);
    auto& h = reg->histogram("dsp/fft/wall_ns",
                             {.first_bound = 10.0, .growth = 10.0,
                              .buckets = 4});
    h.record(5.0);    // bucket le=10
    h.record(50.0);   // bucket le=100
    h.record(50.0);
    return reg;
  }();
  return *r;
}

TEST(ExportTest, PrometheusNames) {
  EXPECT_EQ(prometheus_name("net/switch/s1/queue_depth"),
            "mdn_net_switch_s1_queue_depth");
  EXPECT_EQ(prometheus_name("dsp/fft/wall_ns"), "mdn_dsp_fft_wall_ns");
}

TEST(ExportTest, PrometheusNamesSanitiseHostileInput) {
  // Anything outside [a-zA-Z0-9_:] must be replaced — slashes, dashes,
  // spaces, quotes, newlines.  The mdn_ prefix also guards against a
  // leading digit.
  const std::string hostile = prometheus_name("score/mic-0/\"odd\" name\n2");
  EXPECT_EQ(hostile.find_first_not_of(
                "abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"),
            std::string::npos);
  EXPECT_EQ(prometheus_name("0abc"), "mdn_0abc");  // prefix keeps it legal
}

TEST(ExportTest, PrometheusLabelValueEscaping) {
  // Per the text-format spec only backslash, double quote and newline
  // are escaped inside label values.
  EXPECT_EQ(prometheus_label_value("plain"), "plain");
  EXPECT_EQ(prometheus_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_label_value("two\nlines"), "two\\nlines");
  EXPECT_EQ(prometheus_label_value("tab\tok"), "tab\tok");  // untouched
  EXPECT_EQ(prometheus_label_value("rack\\1 \"mic\"\nA"),
            "rack\\\\1 \\\"mic\\\"\\nA");
}

TEST(ExportTest, HostileMetricPathsSurviveAllExporters) {
  Registry reg;
  reg.counter("weird/name with spaces/\"quoted\"").add(1);
  reg.gauge("trailing/slash/").set(2);
  const auto snapshot = reg.snapshot();

  const std::string prom = to_prometheus(snapshot);
  // Every non-comment line must be `<legal_name>(_suffix)?({...})? <num>`.
  std::size_t start = 0;
  while (start < prom.size()) {
    std::size_t end = prom.find('\n', start);
    if (end == std::string::npos) end = prom.size();
    const std::string line = prom.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of(" {");
    ASSERT_NE(name_end, std::string::npos) << line;
    EXPECT_EQ(line.substr(0, name_end)
                  .find_first_not_of(
                      "abcdefghijklmnopqrstuvwxyz"
                      "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"),
              std::string::npos)
        << line;
  }

  // JSON exporters escape instead of sanitising: round-trip the quotes.
  EXPECT_NE(to_jsonl(snapshot).find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(to_json(snapshot).find("\\\"quoted\\\""), std::string::npos);
}

TEST(ExportTest, PrometheusText) {
  const std::string out = to_prometheus(sample_registry().snapshot());
  EXPECT_NE(out.find("# TYPE mdn_net_switch_s1_packets counter\n"
                     "mdn_net_switch_s1_packets 7\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE mdn_net_loop_queue_depth gauge\n"
                     "mdn_net_loop_queue_depth 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE mdn_dsp_fft_wall_ns histogram\n"),
            std::string::npos);
  // Cumulative buckets: 1 sample <= 10, 3 samples <= 100 and <= +Inf.
  EXPECT_NE(out.find("mdn_dsp_fft_wall_ns_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("mdn_dsp_fft_wall_ns_bucket{le=\"100\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("mdn_dsp_fft_wall_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("mdn_dsp_fft_wall_ns_sum 105\n"), std::string::npos);
  EXPECT_NE(out.find("mdn_dsp_fft_wall_ns_count 3\n"), std::string::npos);
}

TEST(ExportTest, JsonlOneLinePerMetric) {
  const std::string out = to_jsonl(sample_registry().snapshot());
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(out.find("{\"name\":\"net/switch/s1/packets\","
                     "\"kind\":\"counter\",\"value\":7}"),
            std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"histogram\""), std::string::npos);
}

TEST(ExportTest, JsonObjectKeyedByName) {
  const std::string out = to_json(sample_registry().snapshot());
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '}');
  EXPECT_NE(out.find("\"net/switch/s1/packets\":{\"kind\":\"counter\","
                     "\"value\":7}"),
            std::string::npos);
  EXPECT_NE(out.find("\"dsp/fft/wall_ns\":{\"kind\":\"histogram\""),
            std::string::npos);
  EXPECT_NE(out.find("\"buckets\":[[10,1],[100,2]]"), std::string::npos);
}

TEST(ExportTest, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(ExportTest, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "obs_export_test.txt";
  ASSERT_TRUE(write_file(path, "hello"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[16] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "hello");
  std::remove(path.c_str());
}

TEST(ExportTest, WriteFileFailsGracefully) {
  EXPECT_FALSE(write_file("/nonexistent-dir/x/y/z.txt", "data"));
}

}  // namespace
}  // namespace mdn::obs
