#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "obs/metrics.h"

namespace mdn::obs {
namespace {

TEST(TimelineTest, SamplesTrackedInstrumentsInRegistrationOrder) {
  Counter packets;
  Gauge depth;
  Timeline timeline({.capacity = 8});
  timeline.track_counter("net/packets", packets);
  timeline.track_gauge("rt/queue_depth", depth);
  ASSERT_EQ(timeline.track_count(), 2u);
  EXPECT_EQ(timeline.track_name(0), "net/packets");
  EXPECT_EQ(timeline.track_name(1), "rt/queue_depth");

  packets.add(3);
  depth.set(2);
  timeline.sample(1'000'000'000);
  packets.add(7);
  depth.set(5);
  timeline.sample(2'000'000'000);

  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline.time_at(0), 1'000'000'000);
  EXPECT_EQ(timeline.value_at(0, 0), 3.0);
  EXPECT_EQ(timeline.value_at(1, 0), 10.0);
  EXPECT_EQ(timeline.value_at(1, 1), 5.0);
}

TEST(TimelineTest, RingKeepsNewestRowsAndCountsDropped) {
  Counter c;
  Timeline timeline({.capacity = 4});
  timeline.track_counter("c", c);
  for (int i = 0; i < 10; ++i) {
    c.inc();
    timeline.sample(i * 1'000'000'000LL);
  }
  EXPECT_EQ(timeline.sampled(), 10u);
  EXPECT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline.dropped(), 6u);
  // Oldest resident row is sample #6 (value 7 after seven incs).
  EXPECT_EQ(timeline.time_at(0), 6'000'000'000LL);
  EXPECT_EQ(timeline.value_at(0, 0), 7.0);
  EXPECT_EQ(timeline.time_at(3), 9'000'000'000LL);
  EXPECT_EQ(timeline.value_at(3, 0), 10.0);
}

TEST(TimelineTest, RollupDerivesRateAndExtremes) {
  Counter c;
  Gauge g;
  Timeline timeline({.capacity = 16});
  timeline.track_counter("pkts", c);
  timeline.track_gauge("depth", g);
  // 100 packets over 2 s of sim time -> 50/s; gauge dips to -3.
  g.set(4);
  timeline.sample(0);
  c.add(60);
  g.set(-3);
  timeline.sample(1'000'000'000);
  c.add(40);
  g.set(1);
  timeline.sample(2'000'000'000);

  const Timeline::Rollup pkts = timeline.rollup(0);
  EXPECT_EQ(pkts.first, 0.0);
  EXPECT_EQ(pkts.last, 100.0);
  EXPECT_EQ(pkts.delta, 100.0);
  EXPECT_DOUBLE_EQ(pkts.rate_per_s, 50.0);
  const Timeline::Rollup depth = timeline.rollup(1);
  EXPECT_EQ(depth.min, -3.0);
  EXPECT_EQ(depth.max, 4.0);
  EXPECT_EQ(depth.last, 1.0);
}

TEST(TimelineTest, TrackingAfterSamplingThrows) {
  Counter c;
  Timeline timeline({.capacity = 4});
  timeline.track_counter("c", c);
  timeline.sample(0);
  Gauge g;
  EXPECT_THROW(timeline.track_gauge("late", g), std::logic_error);
}

TEST(TimelineTest, RegistryOverloadsResolveByName) {
  Registry& reg = Registry::global();
  reg.counter("timeline_test/ctr").add(5);
  reg.gauge("timeline_test/gge").set(9);
  Timeline timeline({.capacity = 4});
  timeline.track_counter(reg, "timeline_test/ctr");
  timeline.track_gauge(reg, "timeline_test/gge");
  timeline.sample(0);
  EXPECT_EQ(timeline.value_at(0, 0), 5.0);
  EXPECT_EQ(timeline.value_at(0, 1), 9.0);
}

TEST(TimelineTest, JsonlIsCanonicalOldestFirst) {
  Counter c;
  Timeline timeline({.capacity = 4});
  timeline.track_counter("a/b", c);
  c.add(1);
  timeline.sample(500'000'000);
  c.add(1);
  timeline.sample(1'500'000'000);

  const std::string jsonl = timeline.to_timeline_jsonl();
  EXPECT_EQ(jsonl,
            "{\"t_ns\":500000000,\"values\":{\"a/b\":1}}\n"
            "{\"t_ns\":1500000000,\"values\":{\"a/b\":2}}\n");
  // Byte-stable across repeated export.
  EXPECT_EQ(jsonl, timeline.to_timeline_jsonl());
}

TEST(TimelineTest, PrometheusRollupFamilies) {
  Counter c;
  Timeline timeline({.capacity = 8});
  timeline.track_counter("pkts", c);
  c.add(10);
  timeline.sample(0);
  c.add(10);
  timeline.sample(2'000'000'000);

  const std::string prom = timeline.to_prometheus();
  EXPECT_NE(prom.find("# TYPE mdn_timeline_samples gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("mdn_timeline_samples 2"), std::string::npos);
  EXPECT_NE(prom.find("mdn_timeline_dropped 0"), std::string::npos);
  EXPECT_NE(prom.find("mdn_timeline_last{track=\"pkts\"} 20"),
            std::string::npos);
  EXPECT_NE(prom.find("mdn_timeline_rate_per_second{track=\"pkts\"} 5"),
            std::string::npos);
}

TEST(TimelineTest, SparklinesRenderEveryTrack) {
  Counter c;
  Gauge g;
  Timeline timeline({.capacity = 32});
  timeline.track_counter("dsp/blocks", c);
  timeline.track_gauge("rt/depth", g);
  for (int i = 0; i < 20; ++i) {
    c.add(static_cast<std::uint64_t>(i % 5));
    g.set(i % 7);
    timeline.sample(i * 100'000'000LL);
  }
  const std::string panel = timeline.render_sparklines(16);
  EXPECT_NE(panel.find("dsp/blocks"), std::string::npos);
  EXPECT_NE(panel.find("rt/depth"), std::string::npos);
  EXPECT_NE(panel.find("rate="), std::string::npos);

  timeline.clear();
  EXPECT_EQ(timeline.size(), 0u);
  EXPECT_EQ(timeline.sampled(), 0u);
  EXPECT_NE(timeline.render_sparklines().find("no samples"),
            std::string::npos);
}

}  // namespace
}  // namespace mdn::obs
