#include "obs/latency.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>

#include "obs/journal.h"

namespace mdn::obs {
namespace {

JournalRecord make_record(JournalKind kind, std::int64_t sim_ns,
                          CauseId cause = 0) {
  JournalRecord r;
  r.kind = kind;
  r.sim_ns = sim_ns;
  r.cause = cause;
  return r;
}

// The canonical pipeline: emitted(0) -> ingested(50ms) -> detected(50ms)
// -> fsm(50ms) -> flow mod(51ms).  Returns the flow-mod id.
CauseId append_pipeline(Journal& journal, std::int64_t base_ns) {
  const CauseId e = journal.append(
      make_record(JournalKind::kToneEmitted, base_ns));
  const CauseId ing = journal.append(
      make_record(JournalKind::kBlockIngested, base_ns + 50'000'000, e));
  JournalRecord det =
      make_record(JournalKind::kToneDetected, base_ns + 50'000'000, e);
  det.cause2 = ing;
  const CauseId d = journal.append(det);
  const CauseId f = journal.append(
      make_record(JournalKind::kFsmTransition, base_ns + 50'000'000, d));
  return journal.append(
      make_record(JournalKind::kFlowMod, base_ns + 51'000'000, f));
}

TEST(LatencyStageTest, NamesAreStableAndPairSensitive) {
  EXPECT_EQ(latency_stage_name(LatencyStage::kCapture), "capture");
  EXPECT_EQ(latency_stage_name(LatencyStage::kActuate), "actuate");
  // The detection hop's stage depends on where it came from.
  EXPECT_EQ(latency_stage_of(JournalKind::kBlockIngested,
                             JournalKind::kToneDetected),
            LatencyStage::kRingWait);
  EXPECT_EQ(latency_stage_of(JournalKind::kToneEmitted,
                             JournalKind::kToneDetected),
            LatencyStage::kDetect);
  EXPECT_EQ(latency_stage_of(JournalKind::kToneEmitted,
                             JournalKind::kBlockIngested),
            LatencyStage::kCapture);
  EXPECT_EQ(latency_stage_of(JournalKind::kFsmTransition,
                             JournalKind::kFlowMod),
            LatencyStage::kActuate);
}

TEST(LatencyProfilerTest, BreakdownTelescopesToEndToEnd) {
  Journal journal;
  journal.enable(64);
  const CauseId mod = append_pipeline(journal, 1'000'000'000);

  LatencyProfiler profiler(journal);
  const Breakdown b = profiler.breakdown(mod);
  EXPECT_EQ(b.action, mod);
  EXPECT_EQ(b.total_ns, 51'000'000);
  ASSERT_EQ(b.hops.size(), 4u);
  // Per-stage sums telescope exactly to the end-to-end latency.
  const std::int64_t stage_sum =
      std::accumulate(b.stage_ns.begin(), b.stage_ns.end(),
                      static_cast<std::int64_t>(0));
  EXPECT_EQ(stage_sum, b.total_ns);
  EXPECT_EQ(b.stage_ns[static_cast<std::size_t>(LatencyStage::kCapture)],
            50'000'000);
  EXPECT_EQ(b.stage_ns[static_cast<std::size_t>(LatencyStage::kRingWait)],
            0);
  EXPECT_EQ(b.stage_ns[static_cast<std::size_t>(LatencyStage::kActuate)],
            1'000'000);
  EXPECT_GE(b.distinct_stages(), 4u);
  // The waterfall names every hop.
  const std::string waterfall = b.render();
  EXPECT_NE(waterfall.find("capture"), std::string::npos);
  EXPECT_NE(waterfall.find("actuate"), std::string::npos);
}

TEST(LatencyProfilerTest, UnknownActionYieldsEmptyBreakdown) {
  Journal journal;
  journal.enable(8);
  LatencyProfiler profiler(journal);
  const Breakdown b = profiler.breakdown(12345);
  EXPECT_EQ(b.total_ns, 0);
  EXPECT_TRUE(b.hops.empty());
  EXPECT_EQ(b.distinct_stages(), 0u);
}

TEST(LatencyProfilerTest, ProfileAccumulatesStageHistograms) {
  Journal journal;
  journal.enable(256);
  for (int i = 0; i < 5; ++i) {
    append_pipeline(journal, i * 100'000'000);
  }

  LatencyProfiler profiler(journal);
  EXPECT_EQ(profiler.profile(JournalKind::kFlowMod), 5u);
  EXPECT_EQ(profiler.actions_profiled(), 5u);

  const auto capture = profiler.stage_stats(LatencyStage::kCapture);
  EXPECT_EQ(capture.count, 5u);
  EXPECT_NEAR(capture.p50_ns, 50'000'000.0, 5'000'000.0);
  const auto actuate = profiler.stage_stats(LatencyStage::kActuate);
  EXPECT_EQ(actuate.count, 5u);

  // summary() lists only sampled stages; slowest is capture (largest
  // p99 of the sampled set).
  const auto summary = profiler.summary();
  EXPECT_GE(summary.size(), 3u);
  for (const auto& s : summary) EXPECT_GT(s.count, 0u);
  EXPECT_EQ(profiler.slowest_stage().stage, LatencyStage::kCapture);

  const std::string table = profiler.render();
  EXPECT_NE(table.find("slowest stage: capture"), std::string::npos);

  profiler.clear();
  EXPECT_EQ(profiler.actions_profiled(), 0u);
  EXPECT_EQ(profiler.stage_stats(LatencyStage::kCapture).count, 0u);
}

TEST(LatencyProfilerTest, PrometheusFamiliesAreSchemaShaped) {
  Journal journal;
  journal.enable(64);
  append_pipeline(journal, 0);
  LatencyProfiler profiler(journal);
  profiler.profile(JournalKind::kFlowMod);

  const std::string prom = profiler.to_prometheus();
  EXPECT_NE(prom.find("# TYPE mdn_latency_stage_count gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE mdn_latency_stage_p99_seconds gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("mdn_latency_stage_p50_seconds{stage=\"capture\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("mdn_latency_actions_profiled 1"),
            std::string::npos);
}

TEST(LatencyProfilerTest, ChromeTraceWaterfallEmitsStageTracks) {
  Journal journal;
  journal.enable(64);
  append_pipeline(journal, 0);
  LatencyProfiler profiler(journal);
  profiler.profile(JournalKind::kFlowMod);

  const std::string trace = to_chrome_trace_waterfall(profiler);
  EXPECT_EQ(trace.front(), '{');
  EXPECT_EQ(trace.back(), '}');
  EXPECT_NE(trace.find("latency/capture"), std::string::npos);
  EXPECT_NE(trace.find("latency/actuate"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

}  // namespace
}  // namespace mdn::obs
