#include "obs/journal.h"

#include <gtest/gtest.h>

#include <string>

namespace mdn::obs {
namespace {

JournalRecord make_record(JournalKind kind, std::int64_t sim_ns,
                          double frequency_hz = 0.0, CauseId cause = 0) {
  JournalRecord r;
  r.kind = kind;
  r.sim_ns = sim_ns;
  r.frequency_hz = frequency_hz;
  r.cause = cause;
  return r;
}

TEST(JournalTest, DisabledByDefaultAndAppendReturnsZero) {
  Journal journal;
  EXPECT_FALSE(journal.enabled());
  EXPECT_EQ(journal.append(make_record(JournalKind::kToneEmitted, 1)), 0u);
  EXPECT_EQ(journal.size(), 0u);
}

TEST(JournalTest, AppendAssignsMonotonicIdsAndFindRoundTrips) {
  Journal journal;
  journal.enable(8);
  const CauseId a = journal.append(
      make_record(JournalKind::kToneEmitted, 100, 800.0));
  const CauseId b = journal.append(
      make_record(JournalKind::kToneDetected, 200, 800.0, a));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);

  JournalRecord out;
  ASSERT_TRUE(journal.find(b, &out));
  EXPECT_EQ(out.kind, JournalKind::kToneDetected);
  EXPECT_EQ(out.cause, a);
  EXPECT_EQ(out.sim_ns, 200);
  EXPECT_FALSE(journal.find(0, &out));
  EXPECT_FALSE(journal.find(99, &out));
}

TEST(JournalTest, RingEvictsOldestAndFindReportsEvicted) {
  Journal journal;
  journal.enable(4);
  for (int i = 0; i < 6; ++i) {
    journal.append(make_record(JournalKind::kToneEmitted, i));
  }
  EXPECT_EQ(journal.appended(), 6u);
  EXPECT_EQ(journal.evicted(), 2u);
  EXPECT_EQ(journal.size(), 4u);
  JournalRecord out;
  EXPECT_FALSE(journal.find(1, &out));  // evicted
  EXPECT_FALSE(journal.find(2, &out));
  EXPECT_TRUE(journal.find(3, &out));
  EXPECT_TRUE(journal.find(6, &out));
}

TEST(JournalTest, LabelTruncatesAndStaysNulTerminated) {
  JournalRecord r;
  set_journal_label(r, "a-very-long-component-label-that-overflows");
  EXPECT_LT(std::string(r.label).size(), sizeof(r.label));
  set_journal_label(r, "short");
  EXPECT_STREQ(r.label, "short");
}

TEST(JournalTest, ExplainWalksCauseAndCause2Links) {
  Journal journal;
  journal.enable(64);
  // Emission -> detection -> fsm1; emission2 -> detection2 -> fsm2
  // (cause2 = fsm1); flow mod <- fsm2.  explain(flow) must recover all 7.
  const CauseId e1 =
      journal.append(make_record(JournalKind::kToneEmitted, 10, 500.0));
  const CauseId d1 =
      journal.append(make_record(JournalKind::kToneDetected, 20, 500.0, e1));
  const CauseId f1 =
      journal.append(make_record(JournalKind::kFsmTransition, 20, 0.0, d1));
  const CauseId e2 =
      journal.append(make_record(JournalKind::kToneEmitted, 30, 600.0));
  const CauseId d2 =
      journal.append(make_record(JournalKind::kToneDetected, 40, 600.0, e2));
  JournalRecord fsm2 = make_record(JournalKind::kFsmTransition, 40, 0.0, d2);
  fsm2.cause2 = f1;
  const CauseId f2 = journal.append(fsm2);
  const CauseId mod =
      journal.append(make_record(JournalKind::kFlowMod, 41, 0.0, f2));

  const auto chain = journal.explain(mod);
  ASSERT_EQ(chain.size(), 7u);
  // Ascending in time, the flow mod last.
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LE(chain[i - 1].sim_ns, chain[i].sim_ns);
  }
  EXPECT_EQ(chain.back().kind, JournalKind::kFlowMod);
  EXPECT_EQ(chain.front().kind, JournalKind::kToneEmitted);

  EXPECT_TRUE(journal.explain(999).empty());
}

TEST(JournalTest, RecentOfReturnsNewestOfKindOldestFirst) {
  Journal journal;
  journal.enable(16);
  journal.append(make_record(JournalKind::kToneEmitted, 1));
  const CauseId m1 = journal.append(make_record(JournalKind::kFlowMod, 2));
  journal.append(make_record(JournalKind::kToneDetected, 3));
  const CauseId m2 = journal.append(make_record(JournalKind::kFlowMod, 4));
  const CauseId m3 = journal.append(make_record(JournalKind::kFlowMod, 5));

  const auto last2 = journal.recent_of(JournalKind::kFlowMod, 2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0], m2);
  EXPECT_EQ(last2[1], m3);
  const auto all = journal.recent_of(JournalKind::kFlowMod, 10);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], m1);
}

TEST(JournalTest, CanonicalJsonlRenumbersAcrossMintOrders) {
  // Same three records minted in two different id orders must export
  // byte-identically: content sorting + id renumbering erases the
  // interleaving.
  Journal a;
  a.enable(16);
  const CauseId ae = a.append(make_record(JournalKind::kToneEmitted, 10, 700.0));
  a.append(make_record(JournalKind::kToneEmitted, 30, 900.0));
  a.append(make_record(JournalKind::kToneDetected, 20, 700.0, ae));

  Journal b;
  b.enable(16);
  b.append(make_record(JournalKind::kToneEmitted, 30, 900.0));
  const CauseId be = b.append(make_record(JournalKind::kToneEmitted, 10, 700.0));
  b.append(make_record(JournalKind::kToneDetected, 20, 700.0, be));

  const std::string ja = to_journal_jsonl(a);
  const std::string jb = to_journal_jsonl(b);
  EXPECT_EQ(ja, jb);
  // The detection's rewritten cause must point at the 700 Hz emission's
  // new id (line 1: earliest sim_ns).
  EXPECT_NE(ja.find("\"cause\":1"), std::string::npos);
}

TEST(JournalTest, ExplainTextMentionsEveryHop) {
  Journal journal;
  journal.enable(16);
  JournalRecord e = make_record(JournalKind::kToneEmitted, 1000000000, 800.0);
  set_journal_label(e, "s1");
  const CauseId eid = journal.append(e);
  JournalRecord d = make_record(JournalKind::kToneDetected, 1050000000, 800.0,
                                eid);
  d.mic = 0;
  d.watch = 2;
  const CauseId did = journal.append(d);
  const std::string text = explain_text(journal, did);
  EXPECT_NE(text.find("tone_emitted"), std::string::npos);
  EXPECT_NE(text.find("tone_detected"), std::string::npos);
  EXPECT_NE(text.find("800"), std::string::npos);
}

TEST(JournalTest, ClearRestartsIdsKeepsEnabled) {
  Journal journal;
  journal.enable(8);
  journal.append(make_record(JournalKind::kToneEmitted, 1));
  journal.clear();
  EXPECT_TRUE(journal.enabled());
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.append(make_record(JournalKind::kToneEmitted, 2)), 1u);
}

}  // namespace
}  // namespace mdn::obs
