#include "obs/journal.h"

#include <gtest/gtest.h>

#include <string>

namespace mdn::obs {
namespace {

JournalRecord make_record(JournalKind kind, std::int64_t sim_ns,
                          double frequency_hz = 0.0, CauseId cause = 0) {
  JournalRecord r;
  r.kind = kind;
  r.sim_ns = sim_ns;
  r.frequency_hz = frequency_hz;
  r.cause = cause;
  return r;
}

TEST(JournalTest, DisabledByDefaultAndAppendReturnsZero) {
  Journal journal;
  EXPECT_FALSE(journal.enabled());
  EXPECT_EQ(journal.append(make_record(JournalKind::kToneEmitted, 1)), 0u);
  EXPECT_EQ(journal.size(), 0u);
}

TEST(JournalTest, AppendAssignsMonotonicIdsAndFindRoundTrips) {
  Journal journal;
  journal.enable(8);
  const CauseId a = journal.append(
      make_record(JournalKind::kToneEmitted, 100, 800.0));
  const CauseId b = journal.append(
      make_record(JournalKind::kToneDetected, 200, 800.0, a));
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);

  JournalRecord out;
  ASSERT_TRUE(journal.find(b, &out));
  EXPECT_EQ(out.kind, JournalKind::kToneDetected);
  EXPECT_EQ(out.cause, a);
  EXPECT_EQ(out.sim_ns, 200);
  EXPECT_FALSE(journal.find(0, &out));
  EXPECT_FALSE(journal.find(99, &out));
}

TEST(JournalTest, RingEvictsOldestAndFindReportsEvicted) {
  Journal journal;
  journal.enable(4);
  for (int i = 0; i < 6; ++i) {
    journal.append(make_record(JournalKind::kToneEmitted, i));
  }
  EXPECT_EQ(journal.appended(), 6u);
  EXPECT_EQ(journal.evicted(), 2u);
  EXPECT_EQ(journal.size(), 4u);
  JournalRecord out;
  EXPECT_FALSE(journal.find(1, &out));  // evicted
  EXPECT_FALSE(journal.find(2, &out));
  EXPECT_TRUE(journal.find(3, &out));
  EXPECT_TRUE(journal.find(6, &out));
}

TEST(JournalTest, LabelTruncatesAndStaysNulTerminated) {
  JournalRecord r;
  set_journal_label(r, "a-very-long-component-label-that-overflows");
  EXPECT_LT(std::string(r.label).size(), sizeof(r.label));
  set_journal_label(r, "short");
  EXPECT_STREQ(r.label, "short");
}

TEST(JournalTest, ExplainWalksCauseAndCause2Links) {
  Journal journal;
  journal.enable(64);
  // Emission -> detection -> fsm1; emission2 -> detection2 -> fsm2
  // (cause2 = fsm1); flow mod <- fsm2.  explain(flow) must recover all 7.
  const CauseId e1 =
      journal.append(make_record(JournalKind::kToneEmitted, 10, 500.0));
  const CauseId d1 =
      journal.append(make_record(JournalKind::kToneDetected, 20, 500.0, e1));
  const CauseId f1 =
      journal.append(make_record(JournalKind::kFsmTransition, 20, 0.0, d1));
  const CauseId e2 =
      journal.append(make_record(JournalKind::kToneEmitted, 30, 600.0));
  const CauseId d2 =
      journal.append(make_record(JournalKind::kToneDetected, 40, 600.0, e2));
  JournalRecord fsm2 = make_record(JournalKind::kFsmTransition, 40, 0.0, d2);
  fsm2.cause2 = f1;
  const CauseId f2 = journal.append(fsm2);
  const CauseId mod =
      journal.append(make_record(JournalKind::kFlowMod, 41, 0.0, f2));

  const auto chain = journal.explain(mod);
  ASSERT_EQ(chain.size(), 7u);
  // Ascending in time, the flow mod last.
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LE(chain[i - 1].sim_ns, chain[i].sim_ns);
  }
  EXPECT_EQ(chain.back().kind, JournalKind::kFlowMod);
  EXPECT_EQ(chain.front().kind, JournalKind::kToneEmitted);

  EXPECT_TRUE(journal.explain(999).empty());
}

TEST(JournalTest, ExplainDiamondVisitsSharedRootOnce) {
  // A true diamond: the merged record's cause and cause2 reach the SAME
  // emission through different intermediate hops.  BFS must visit the
  // shared root exactly once (linear seen-set, no duplicates).
  Journal journal;
  journal.enable(32);
  const CauseId root =
      journal.append(make_record(JournalKind::kToneEmitted, 10, 440.0));
  const CauseId left =
      journal.append(make_record(JournalKind::kToneDetected, 20, 440.0, root));
  const CauseId right =
      journal.append(make_record(JournalKind::kBlockIngested, 20, 0.0, root));
  JournalRecord merged = make_record(JournalKind::kMergedEvent, 30, 440.0,
                                     left);
  merged.cause2 = right;
  const CauseId m = journal.append(merged);

  const auto chain = journal.explain(m);
  ASSERT_EQ(chain.size(), 4u);
  std::size_t roots = 0;
  for (const auto& r : chain) {
    if (r.kind == JournalKind::kToneEmitted) ++roots;
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(chain.front().id, root);
  EXPECT_EQ(chain.back().id, m);
  // Rendering is deterministic: two walks give the same bytes.
  EXPECT_EQ(explain_text(journal, m), explain_text(journal, m));
}

TEST(JournalTest, ExplainTerminatesOnSelfAndMutualCycles) {
  Journal journal;
  journal.enable(16);
  // Ids are sequential from 1, so a record can cite its own id before
  // append() assigns it — a self-referential link a corrupted producer
  // could mint.  explain() must terminate with the record exactly once.
  JournalRecord self = make_record(JournalKind::kFsmTransition, 5);
  self.cause = 1;
  const CauseId sid = journal.append(self);
  ASSERT_EQ(sid, 1u);
  const auto self_chain = journal.explain(sid);
  ASSERT_EQ(self_chain.size(), 1u);
  EXPECT_EQ(self_chain[0].id, sid);

  // Mutual cycle: #2 cites #3 and #3 cites #2.
  JournalRecord a = make_record(JournalKind::kToneEmitted, 1, 0.0, 3);
  JournalRecord b = make_record(JournalKind::kToneDetected, 2, 0.0, 2);
  const CauseId aid = journal.append(a);
  const CauseId bid = journal.append(b);
  ASSERT_EQ(aid, 2u);
  ASSERT_EQ(bid, 3u);
  const auto cycle = journal.explain(bid);
  EXPECT_EQ(cycle.size(), 2u);
  const std::string text = explain_text(journal, bid);
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text, explain_text(journal, bid));
}

TEST(JournalTest, ExplainStopsCleanlyAtEvictedCause) {
  // A small ring evicts the emission before the detection citing it is
  // walked: the chain is truncated at the evicted link, not an error.
  Journal journal;
  journal.enable(4);
  const CauseId e =
      journal.append(make_record(JournalKind::kToneEmitted, 1, 300.0));
  for (int i = 0; i < 4; ++i) {
    journal.append(make_record(JournalKind::kAppAction, 2 + i));
  }
  JournalRecord out;
  ASSERT_FALSE(journal.find(e, &out));  // evicted by the fillers
  const CauseId d =
      journal.append(make_record(JournalKind::kToneDetected, 10, 300.0, e));

  const auto chain = journal.explain(d);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0].id, d);
  const std::string text = explain_text(journal, d);
  EXPECT_NE(text.find("tone_detected"), std::string::npos);
  EXPECT_EQ(text, explain_text(journal, d));
}

TEST(JournalTest, RecentOfReturnsNewestOfKindOldestFirst) {
  Journal journal;
  journal.enable(16);
  journal.append(make_record(JournalKind::kToneEmitted, 1));
  const CauseId m1 = journal.append(make_record(JournalKind::kFlowMod, 2));
  journal.append(make_record(JournalKind::kToneDetected, 3));
  const CauseId m2 = journal.append(make_record(JournalKind::kFlowMod, 4));
  const CauseId m3 = journal.append(make_record(JournalKind::kFlowMod, 5));

  const auto last2 = journal.recent_of(JournalKind::kFlowMod, 2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0], m2);
  EXPECT_EQ(last2[1], m3);
  const auto all = journal.recent_of(JournalKind::kFlowMod, 10);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], m1);
}

TEST(JournalTest, CanonicalJsonlRenumbersAcrossMintOrders) {
  // Same three records minted in two different id orders must export
  // byte-identically: content sorting + id renumbering erases the
  // interleaving.
  Journal a;
  a.enable(16);
  const CauseId ae = a.append(make_record(JournalKind::kToneEmitted, 10, 700.0));
  a.append(make_record(JournalKind::kToneEmitted, 30, 900.0));
  a.append(make_record(JournalKind::kToneDetected, 20, 700.0, ae));

  Journal b;
  b.enable(16);
  b.append(make_record(JournalKind::kToneEmitted, 30, 900.0));
  const CauseId be = b.append(make_record(JournalKind::kToneEmitted, 10, 700.0));
  b.append(make_record(JournalKind::kToneDetected, 20, 700.0, be));

  const std::string ja = to_journal_jsonl(a);
  const std::string jb = to_journal_jsonl(b);
  EXPECT_EQ(ja, jb);
  // The detection's rewritten cause must point at the 700 Hz emission's
  // new id (line 1: earliest sim_ns).
  EXPECT_NE(ja.find("\"cause\":1"), std::string::npos);
}

TEST(JournalTest, ExplainTextMentionsEveryHop) {
  Journal journal;
  journal.enable(16);
  JournalRecord e = make_record(JournalKind::kToneEmitted, 1000000000, 800.0);
  set_journal_label(e, "s1");
  const CauseId eid = journal.append(e);
  JournalRecord d = make_record(JournalKind::kToneDetected, 1050000000, 800.0,
                                eid);
  d.mic = 0;
  d.watch = 2;
  const CauseId did = journal.append(d);
  const std::string text = explain_text(journal, did);
  EXPECT_NE(text.find("tone_emitted"), std::string::npos);
  EXPECT_NE(text.find("tone_detected"), std::string::npos);
  EXPECT_NE(text.find("800"), std::string::npos);
}

TEST(JournalTest, ClearRestartsIdsKeepsEnabled) {
  Journal journal;
  journal.enable(8);
  journal.append(make_record(JournalKind::kToneEmitted, 1));
  journal.clear();
  EXPECT_TRUE(journal.enabled());
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.append(make_record(JournalKind::kToneEmitted, 2)), 1u);
}

}  // namespace
}  // namespace mdn::obs
