#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "dsp/ecdf.h"

namespace mdn::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddAndMaxSeen) {
  Gauge g;
  g.set(10);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.max_seen(), 10);
  g.add(5);
  EXPECT_EQ(g.value(), 8);
  g.add(-20);
  EXPECT_EQ(g.value(), -12);
  EXPECT_EQ(g.max_seen(), 10);
}

TEST(RegistryTest, LookupReturnsSameInstrument) {
  Registry r;
  Counter& a = r.counter("net/switch/s1/packets");
  Counter& b = r.counter("net/switch/s1/packets");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.contains("net/switch/s1/packets"));
  EXPECT_FALSE(r.contains("net/switch/s2/packets"));
}

TEST(RegistryTest, KindMismatchThrows) {
  Registry r;
  r.counter("x");
  EXPECT_THROW(r.gauge("x"), std::logic_error);
  EXPECT_THROW(r.histogram("x"), std::logic_error);
  r.histogram("h");
  EXPECT_THROW(r.counter("h"), std::logic_error);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  Registry r;
  r.counter("z/last");
  r.gauge("a/first");
  r.histogram("m/middle");
  const Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a/first");
  EXPECT_EQ(snap[1].name, "m/middle");
  EXPECT_EQ(snap[2].name, "z/last");
}

TEST(RegistryTest, ResetZeroesButKeepsPointersValid) {
  Registry r;
  Counter& c = r.counter("c");
  Gauge& g = r.gauge("g");
  Histogram& h = r.histogram("h");
  c.add(7);
  g.set(5);
  h.record(123.0);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  c.inc();  // the same instrument keeps working after reset
  EXPECT_EQ(c.value(), 1u);
}

TEST(RegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h;
  h.record(10.0);
  h.record(20.0);
  h.record(30.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 60.0);
  EXPECT_DOUBLE_EQ(snap.min, 10.0);
  EXPECT_DOUBLE_EQ(snap.max, 30.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 20.0);
}

TEST(HistogramTest, EmptySnapshotIsBenign) {
  Histogram h;
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.cdf(123.0), 0.0);
  EXPECT_TRUE(snap.curve(10).empty());
}

TEST(HistogramTest, InvalidLayoutThrows) {
  EXPECT_THROW(Histogram({.first_bound = 0.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({.growth = 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({.buckets = 1}), std::invalid_argument);
}

// Quantiles against a known uniform distribution, cross-checked against
// the exact dsp::Ecdf the repo already trusts for CDFs.
TEST(HistogramTest, QuantilesMatchEcdfOnUniform) {
  Histogram h;
  dsp::Ecdf exact;
  for (int i = 1; i <= 10000; ++i) {
    h.record(static_cast<double>(i));
    exact.add(static_cast<double>(i));
  }
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.99}) {
    const double approx = h.quantile(q);
    const double truth = exact.quantile(q);
    // Geometric buckets at 2^(1/8) growth: within ~10% relative error.
    EXPECT_NEAR(approx, truth, 0.1 * truth) << "q=" << q;
  }
}

TEST(HistogramTest, QuantilesMatchEcdfOnExponential) {
  Histogram h;
  dsp::Ecdf exact;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    // Inverse-CDF sampling of Exp(mean=1e5) at evenly spaced quantiles.
    const double u = (static_cast<double>(i) + 0.5) / kN;
    const double v = -std::log(1.0 - u) * 1e5;
    h.record(v);
    exact.add(v);
  }
  for (double q : {0.5, 0.9, 0.99}) {
    const double truth = exact.quantile(q);
    EXPECT_NEAR(h.quantile(q), truth, 0.1 * truth) << "q=" << q;
  }
}

TEST(HistogramTest, CdfBracketsAndInterpolates) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_DOUBLE_EQ(snap.cdf(0.5), 0.0);      // below min
  EXPECT_DOUBLE_EQ(snap.cdf(1000.0), 1.0);   // at max
  EXPECT_DOUBLE_EQ(snap.cdf(5000.0), 1.0);   // above max
  EXPECT_NEAR(snap.cdf(500.0), 0.5, 0.05);   // interpolated interior
}

TEST(HistogramTest, QuantileEndpointsClampToObserved) {
  Histogram h;
  h.record(100.0);
  h.record(200.0);
  h.record(400.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 400.0);
}

TEST(HistogramTest, CurveIsMonotone) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i * i));
  const auto curve = h.snapshot().curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GT(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(HistogramTest, OverflowBucketUsesObservedMax) {
  // Two buckets: everything above first_bound lands in the overflow.
  Histogram h({.first_bound = 1.0, .growth = 2.0, .buckets = 2});
  h.record(1e9);
  h.record(2e9);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2e9);
  EXPECT_LE(h.quantile(0.25), 2e9);
}

TEST(HistogramTest, NegativeAndNanInputsAreSafe) {
  Histogram h;
  h.record(-5.0);  // clamped to 0
  h.record(std::nan(""));  // dropped
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.snapshot().min, 0.0);
}

// The quantile() edge-case contract documented in obs/metrics.h: empty
// snapshots answer 0, NaN propagates, out-of-range ranks clamp, and
// every interior answer stays inside [min, max].
TEST(HistogramTest, QuantileNanRankPropagates) {
  Histogram h;
  h.record(10.0);
  EXPECT_TRUE(std::isnan(h.quantile(std::nan(""))));
  // ...but an empty snapshot stays 0 even for a NaN rank's neighbours.
  EXPECT_DOUBLE_EQ(Histogram().quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileOutOfRangeRanksClampToEndpoints) {
  Histogram h;
  h.record(100.0);
  h.record(400.0);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), 100.0);  // clamps to q=0 (exact min)
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 400.0);   // clamps to q=1 (exact max)
}

TEST(HistogramTest, QuantileSingleObservationIsThatObservation) {
  Histogram h;
  h.record(123.0);
  for (double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, 123.0) << "q=" << q;
    EXPECT_LE(v, 123.0) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileAnswersStayWithinObservedRange) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const HistogramSnapshot snap = h.snapshot();
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double v = snap.quantile(q);
    EXPECT_GE(v, snap.min) << "q=" << q;
    EXPECT_LE(v, snap.max) << "q=" << q;
  }
}

}  // namespace
}  // namespace mdn::obs
