#include "obs/scoreboard.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.h"

namespace mdn::obs {
namespace {

CauseId emit(Journal& j, std::int64_t sim_ns, double hz) {
  JournalRecord r;
  r.kind = JournalKind::kToneEmitted;
  r.sim_ns = sim_ns;
  r.frequency_hz = hz;
  return j.append(r);
}

CauseId detect(Journal& j, std::int64_t sim_ns, double hz, CauseId cause,
               std::uint32_t mic = 0, std::int32_t watch = 0) {
  JournalRecord r;
  r.kind = JournalKind::kToneDetected;
  r.sim_ns = sim_ns;
  r.frequency_hz = hz;
  r.cause = cause;
  r.mic = mic;
  r.watch = watch;
  return j.append(r);
}

TEST(ScoreboardTest, CleanChannelIsHundredPercentRecall) {
  Journal j;
  j.enable(64);
  for (int i = 0; i < 5; ++i) {
    const CauseId e = emit(j, i * 100000000, 800.0);
    detect(j, i * 100000000 + 50000000, 800.0, e);
  }
  const Scoreboard board = Scoreboard::build(j, {.watch_hz = {800.0}});
  ASSERT_EQ(board.watch_count(), 1u);
  const auto& cell = board.cell(0, 0);
  EXPECT_EQ(cell.emitted, 5u);
  EXPECT_EQ(cell.detected, 5u);
  EXPECT_EQ(cell.missed, 0u);
  EXPECT_EQ(cell.false_positives, 0u);
  EXPECT_DOUBLE_EQ(cell.recall(), 1.0);
  EXPECT_DOUBLE_EQ(cell.precision(), 1.0);
  // Every detection lagged its emission by exactly 50 ms.
  EXPECT_NEAR(cell.latency_quantile(0.5), 0.05, 1e-9);
  EXPECT_NEAR(cell.latency_quantile(0.95), 0.05, 1e-9);
}

TEST(ScoreboardTest, MissesFalsePositivesAndDuplicates) {
  Journal j;
  j.enable(64);
  const CauseId heard = emit(j, 0, 600.0);
  emit(j, 100000000, 600.0);  // never detected -> miss
  detect(j, 40000000, 600.0, heard);
  detect(j, 90000000, 600.0, heard);  // same emission again -> duplicate
  detect(j, 150000000, 600.0, 0);     // cites nothing -> false positive

  const Scoreboard board = Scoreboard::build(j, {.watch_hz = {600.0}});
  const auto& cell = board.cell(0, 0);
  EXPECT_EQ(cell.emitted, 2u);
  EXPECT_EQ(cell.detected, 1u);
  EXPECT_EQ(cell.duplicates, 1u);
  EXPECT_EQ(cell.false_positives, 1u);
  EXPECT_EQ(cell.missed, 1u);
  EXPECT_DOUBLE_EQ(cell.recall(), 0.5);
  EXPECT_LT(cell.precision(), 1.0);
}

TEST(ScoreboardTest, DropAttributionBlamesBackpressure) {
  Journal j;
  j.enable(64);
  const CauseId eaten = emit(j, 0, 700.0);
  JournalRecord drop;
  drop.kind = JournalKind::kBlockDropped;
  drop.sim_ns = 10000000;
  drop.cause = eaten;
  drop.frequency_hz = 700.0;
  drop.mic = 0;
  j.append(drop);

  const Scoreboard board = Scoreboard::build(j, {.watch_hz = {700.0}});
  const auto& cell = board.cell(0, 0);
  EXPECT_EQ(cell.emitted, 1u);
  EXPECT_EQ(cell.missed, 1u);
  EXPECT_EQ(cell.dropped, 1u);
}

TEST(ScoreboardTest, WatchListDerivedFromJournalWhenEmpty) {
  Journal j;
  j.enable(64);
  const CauseId e = emit(j, 0, 500.0);
  detect(j, 10000000, 500.0, e);
  emit(j, 0, 900.0);
  const Scoreboard board = Scoreboard::build(j);
  EXPECT_EQ(board.watch_count(), 2u);
}

TEST(ScoreboardTest, PerMicCellsAreIndependent) {
  Journal j;
  j.enable(64);
  const CauseId e = emit(j, 0, 800.0);
  detect(j, 10000000, 800.0, e, /*mic=*/0);
  // mic 1 never hears it.
  const Scoreboard board =
      Scoreboard::build(j, {.watch_hz = {800.0}, .mics = 2});
  ASSERT_EQ(board.mic_count(), 2u);
  EXPECT_DOUBLE_EQ(board.cell(0, 0).recall(), 1.0);
  EXPECT_DOUBLE_EQ(board.cell(1, 0).recall(), 0.0);
}

TEST(ScoreboardTest, ExportToRegistryProducesSeries) {
  Journal j;
  j.enable(64);
  const CauseId e = emit(j, 0, 800.0);
  detect(j, 10000000, 800.0, e);
  const Scoreboard board = Scoreboard::build(j, {.watch_hz = {800.0}});

  Registry registry;
  board.export_to(registry);
  const std::string prom = to_prometheus(registry.snapshot());
  EXPECT_NE(prom.find("mdn_score_mic0_watch0_emitted 1"), std::string::npos);
  EXPECT_NE(prom.find("mdn_score_mic0_watch0_detected 1"), std::string::npos);
  EXPECT_NE(prom.find("mdn_score_mic0_watch0_latency_ns_bucket"),
            std::string::npos);
}

TEST(ScoreboardTest, LabeledPrometheusEscapesHostileMicNames) {
  Journal j;
  j.enable(64);
  const CauseId e = emit(j, 0, 800.0);
  detect(j, 10000000, 800.0, e);
  const Scoreboard board = Scoreboard::build(j, {.watch_hz = {800.0}});

  const std::vector<std::string> names = {"rack\\1 \"mic\"\nA"};
  const std::string prom = board.to_prometheus(names);
  // Per the text-format spec: backslash, quote and newline escaped, and
  // no raw newline may survive inside a label value.
  EXPECT_NE(prom.find("mic=\"rack\\\\1 \\\"mic\\\"\\nA\""),
            std::string::npos);
  for (std::size_t pos = prom.find("mic=\""); pos != std::string::npos;) {
    const std::size_t end = prom.find('"', pos + 5);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(prom.substr(pos + 5, end - pos - 5).find('\n'),
              std::string::npos);
    pos = prom.find("mic=\"", end);
  }
  EXPECT_NE(prom.find("mdn_scoreboard_recall"), std::string::npos);
  EXPECT_NE(prom.find("latency_seconds_p50"), std::string::npos);
}

TEST(ScoreboardTest, RenderSkipsEmptyCells) {
  Journal j;
  j.enable(64);
  const CauseId e = emit(j, 0, 800.0);
  detect(j, 10000000, 800.0, e);
  const Scoreboard board =
      Scoreboard::build(j, {.watch_hz = {800.0, 1200.0}});
  const std::string table = board.render();
  EXPECT_NE(table.find("800"), std::string::npos);
  EXPECT_EQ(table.find("1200"), std::string::npos);
}

}  // namespace
}  // namespace mdn::obs
